//! # asqp-telemetry — tracing and metrics for the ASQP-RL pipeline
//!
//! A dependency-free (vendored serde/serde_json only) measurement substrate
//! shared by every layer of the workspace: the vectorized executor, the PPO
//! trainer and the §4.4 inference session all emit through the free
//! functions in this crate, and a pluggable [`Recorder`] decides what the
//! emissions cost.
//!
//! ## Design
//!
//! * **Spans** — hierarchical, monotonic wall-clock timings. [`span`]
//!   returns an RAII guard; nested guards on the same thread form a tree
//!   (per-thread span stacks, so shard/rollout worker threads get their own
//!   roots). Aggregated per unique path: one node per `(parent, name)` with
//!   call count, total/min/max nanoseconds.
//! * **Counters** — monotonically increasing `u64` sums ([`counter`]):
//!   rows scanned, morsels pruned, queries routed.
//! * **Gauges** — last-value-wins `f64` with min/max/count ([`gauge`]):
//!   losses, throughputs.
//! * **Histograms** — fixed-bucket latency distributions ([`observe_ns`]):
//!   13 buckets with boundaries at 1·4ⁿ µs (see
//!   [`HISTOGRAM_BOUNDS_NS`]), plus exact min/max and estimated
//!   p50/p90/p99.
//!
//! ## Cost model
//!
//! When no recorder is installed (the default), every free function is a
//! single relaxed atomic load and a branch — no allocation, no clock read,
//! no locking. Release-mode executor benchmarks stay within noise of an
//! uninstrumented build (the `bench_report` oracle checks this). With the
//! [`MemoryRecorder`] installed, emissions take a mutex; instrumentation in
//! hot code is therefore *coarse* (per query / per scan / per shard), never
//! per row.
//!
//! ## Usage
//!
//! ```
//! use asqp_telemetry as telemetry;
//! use std::sync::Arc;
//!
//! let rec = Arc::new(telemetry::MemoryRecorder::new());
//! telemetry::scoped(rec.clone(), || {
//!     let _q = telemetry::span("db.execute");
//!     telemetry::counter("db.scan.rows_out", 128);
//!     telemetry::observe_ns("session.latency.subset_ns", 42_000);
//! });
//! let report = rec.report();
//! assert_eq!(report.spans[0].name, "db.execute");
//! assert_eq!(report.counters["db.scan.rows_out"], 128);
//! let json = report.to_json_pretty().unwrap();
//! assert!(json.contains("db.execute"));
//! ```

mod histogram;
mod memory;
mod report;

pub use histogram::{bucket_index, Histogram, HISTOGRAM_BOUNDS_NS, HISTOGRAM_BUCKETS};
pub use memory::MemoryRecorder;
pub use report::{GaugeReport, HistogramReport, SpanReport, TelemetryReport};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::{Duration, Instant};

/// Sink for telemetry emissions. Implementations must be cheap and
/// thread-safe: emissions arrive concurrently from executor shards and
/// rollout workers.
pub trait Recorder: Send + Sync {
    /// A span named `name` opened on the calling thread.
    fn span_enter(&self, name: &'static str);
    /// The matching close, with the span's monotonic elapsed time.
    /// Implementations must tolerate an exit without a matching enter
    /// (a recorder installed while a span guard was live).
    fn span_exit(&self, name: &'static str, elapsed_ns: u64);
    /// Add `delta` to the counter `name`.
    fn counter(&self, name: &'static str, delta: u64);
    /// Set the gauge `name` to `value`.
    fn gauge(&self, name: &'static str, value: f64);
    /// Record one latency observation into the histogram `name`.
    fn observe_ns(&self, name: &'static str, ns: u64);
}

/// Discards everything. Installing it is equivalent to (and no cheaper
/// than) installing nothing: the global fast path short-circuits first.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    fn span_enter(&self, _name: &'static str) {}
    fn span_exit(&self, _name: &'static str, _elapsed_ns: u64) {}
    fn counter(&self, _name: &'static str, _delta: u64) {}
    fn gauge(&self, _name: &'static str, _value: f64) {}
    fn observe_ns(&self, _name: &'static str, _ns: u64) {}
}

// The enabled flag is the *only* thing the uninstrumented fast path reads;
// the RwLock is touched exclusively when a recorder is installed.
static ENABLED: AtomicBool = AtomicBool::new(false);
static RECORDER: RwLock<Option<Arc<dyn Recorder>>> = RwLock::new(None);
/// Serializes [`scoped`] sections so concurrent tests cannot observe each
/// other's recorders.
static SCOPE_LOCK: Mutex<()> = Mutex::new(());

/// Whether a recorder is installed. Instrumented code uses this to skip
/// *preparing* emissions (clock reads, sums) when nobody is listening.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

#[inline]
fn with_recorder(f: impl FnOnce(&dyn Recorder)) {
    if !enabled() {
        return;
    }
    let guard = RECORDER.read().unwrap_or_else(|p| p.into_inner());
    if let Some(r) = guard.as_ref() {
        f(r.as_ref());
    }
}

/// Install a recorder process-wide. Every subsequent emission from any
/// thread flows into it until [`uninstall`].
pub fn install(recorder: Arc<dyn Recorder>) {
    let mut guard = RECORDER.write().unwrap_or_else(|p| p.into_inner());
    *guard = Some(recorder);
    ENABLED.store(true, Ordering::SeqCst);
}

/// Remove the installed recorder; emissions return to the near-zero-cost
/// disabled path.
pub fn uninstall() {
    ENABLED.store(false, Ordering::SeqCst);
    let mut guard = RECORDER.write().unwrap_or_else(|p| p.into_inner());
    *guard = None;
}

struct ScopeGuard;

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        uninstall();
    }
}

/// Run `f` with `recorder` installed, uninstalling afterwards (also on
/// panic). Scoped sections are serialized process-wide, so concurrent tests
/// each see only their own emissions.
pub fn scoped<T>(recorder: Arc<dyn Recorder>, f: impl FnOnce() -> T) -> T {
    let _lock = SCOPE_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    install(recorder);
    let _uninstall = ScopeGuard;
    f()
}

/// RAII span guard returned by [`span`]. Closes (and times) the span when
/// dropped. Inert — holding no clock value at all — when telemetry was
/// disabled at open time.
#[must_use = "a span measures the scope it is held for"]
pub struct Span {
    name: &'static str,
    start: Option<Instant>,
}

impl Span {
    /// Elapsed time so far, `None` when the span is inert.
    pub fn elapsed(&self) -> Option<Duration> {
        self.start.map(|s| s.elapsed())
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let ns = start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
            with_recorder(|r| r.span_exit(self.name, ns));
        }
    }
}

/// Open a span. Use a named binding (`let _span = ...`) so the guard lives
/// to the end of the scope being measured.
#[inline]
pub fn span(name: &'static str) -> Span {
    if !enabled() {
        return Span { name, start: None };
    }
    with_recorder(|r| r.span_enter(name));
    Span {
        name,
        start: Some(Instant::now()),
    }
}

/// Run `f` inside a span named `name`.
#[inline]
pub fn time<T>(name: &'static str, f: impl FnOnce() -> T) -> T {
    let _span = span(name);
    f()
}

/// Add `delta` to counter `name`.
#[inline]
pub fn counter(name: &'static str, delta: u64) {
    with_recorder(|r| r.counter(name, delta));
}

/// Set gauge `name` to `value`.
#[inline]
pub fn gauge(name: &'static str, value: f64) {
    with_recorder(|r| r.gauge(name, value));
}

/// Record one latency observation (nanoseconds) into histogram `name`.
#[inline]
pub fn observe_ns(name: &'static str, ns: u64) {
    with_recorder(|r| r.observe_ns(name, ns));
}

/// [`observe_ns`] from a [`Duration`].
#[inline]
pub fn observe_duration(name: &'static str, d: Duration) {
    observe_ns(name, d.as_nanos().min(u64::MAX as u128) as u64);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_emissions_are_inert() {
        assert!(!enabled());
        let s = span("never.recorded");
        assert!(s.elapsed().is_none());
        drop(s);
        counter("never.recorded", 1);
        gauge("never.recorded", 1.0);
        observe_ns("never.recorded", 1);
    }

    #[test]
    fn scoped_uninstalls_on_exit() {
        let rec = Arc::new(MemoryRecorder::new());
        scoped(rec.clone(), || {
            assert!(enabled());
            counter("scoped.count", 2);
        });
        assert!(!enabled());
        counter("scoped.count", 40); // dropped: no recorder
        assert_eq!(rec.report().counters["scoped.count"], 2);
    }

    #[test]
    fn time_wraps_a_span() {
        let rec = Arc::new(MemoryRecorder::new());
        let out = scoped(rec.clone(), || time("timed.block", || 7));
        assert_eq!(out, 7);
        let report = rec.report();
        assert_eq!(report.spans.len(), 1);
        assert_eq!(report.spans[0].name, "timed.block");
        assert_eq!(report.spans[0].count, 1);
    }
}
