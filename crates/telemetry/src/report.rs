//! Serializable run-report types: what a [`crate::MemoryRecorder`] turns
//! its state into, and what `bench_report` embeds in
//! `results/bench_report.json`. All maps are `BTreeMap`s and all span
//! children are sorted by first-seen order, so serialization is
//! deterministic for a deterministic run.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One aggregated span-tree node: all calls that reached this `name` via
/// the same parent chain, on any thread.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanReport {
    pub name: String,
    /// Completed calls.
    pub count: u64,
    pub total_ns: u64,
    pub min_ns: u64,
    pub max_ns: u64,
    pub children: Vec<SpanReport>,
}

/// Last-value-wins gauge with observed range.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaugeReport {
    pub last: f64,
    pub min: f64,
    pub max: f64,
    pub count: u64,
}

/// Fixed-bucket latency histogram snapshot (see
/// [`crate::HISTOGRAM_BOUNDS_NS`] for the bucket boundaries).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramReport {
    pub count: u64,
    pub sum_ns: u64,
    pub min_ns: u64,
    pub max_ns: u64,
    /// One count per bucket, `HISTOGRAM_BUCKETS` long.
    pub buckets: Vec<u64>,
    pub p50_ns: u64,
    pub p90_ns: u64,
    pub p99_ns: u64,
}

impl HistogramReport {
    /// Mean observation in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ns as f64 / self.count as f64
        }
    }
}

/// Everything one recorder saw: the artifact serialized into
/// `results/bench_report.json` and diffed by the CI gate.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct TelemetryReport {
    /// Root spans in first-seen order (one tree per instrumented entry
    /// point; worker threads contribute their own roots).
    pub spans: Vec<SpanReport>,
    pub counters: BTreeMap<String, u64>,
    pub gauges: BTreeMap<String, GaugeReport>,
    pub histograms: BTreeMap<String, HistogramReport>,
}

impl TelemetryReport {
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string(self)
    }

    pub fn to_json_pretty(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string_pretty(self)
    }

    pub fn from_json(s: &str) -> Result<TelemetryReport, serde_json::Error> {
        serde_json::from_str(s)
    }

    /// Depth-first lookup of a span node by name anywhere in the forest.
    pub fn find_span(&self, name: &str) -> Option<&SpanReport> {
        fn walk<'a>(nodes: &'a [SpanReport], name: &str) -> Option<&'a SpanReport> {
            for n in nodes {
                if n.name == name {
                    return Some(n);
                }
                if let Some(hit) = walk(&n.children, name) {
                    return Some(hit);
                }
            }
            None
        }
        walk(&self.spans, name)
    }
}
