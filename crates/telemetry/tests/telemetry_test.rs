//! Telemetry coverage required by the CI issue: span nesting order,
//! histogram bucket boundaries, JSON round-trip through the vendored
//! serde_json, and the no-op recorder recording nothing.

use asqp_telemetry as telemetry;
use asqp_telemetry::{
    bucket_index, Histogram, MemoryRecorder, NoopRecorder, Recorder, TelemetryReport,
    HISTOGRAM_BOUNDS_NS, HISTOGRAM_BUCKETS,
};
use std::sync::Arc;

#[test]
fn span_nesting_builds_the_tree_in_call_order() {
    let rec = Arc::new(MemoryRecorder::new());
    telemetry::scoped(rec.clone(), || {
        let _outer = telemetry::span("outer");
        {
            let _a = telemetry::span("child_a");
            let _leaf = telemetry::span("leaf");
        }
        {
            let _b = telemetry::span("child_b");
        }
        {
            // Re-entering an existing path aggregates, not duplicates.
            let _a = telemetry::span("child_a");
        }
    });
    let report = rec.report();
    assert_eq!(report.spans.len(), 1, "one root span");
    let outer = &report.spans[0];
    assert_eq!(outer.name, "outer");
    assert_eq!(outer.count, 1);
    // Children keep first-seen order and aggregate repeats.
    let names: Vec<&str> = outer.children.iter().map(|c| c.name.as_str()).collect();
    assert_eq!(names, vec!["child_a", "child_b"]);
    assert_eq!(outer.children[0].count, 2);
    assert_eq!(outer.children[0].children[0].name, "leaf");
    // A parent's total covers its children's.
    assert!(outer.total_ns >= outer.children.iter().map(|c| c.total_ns).sum::<u64>());
    assert!(outer.min_ns <= outer.max_ns);
}

#[test]
fn sibling_roots_when_no_span_is_open() {
    let rec = Arc::new(MemoryRecorder::new());
    telemetry::scoped(rec.clone(), || {
        telemetry::time("first_root", || ());
        telemetry::time("second_root", || ());
    });
    let report = rec.report();
    let roots: Vec<&str> = report.spans.iter().map(|s| s.name.as_str()).collect();
    assert_eq!(roots, vec!["first_root", "second_root"]);
}

#[test]
fn spans_from_worker_threads_get_their_own_roots() {
    let rec = Arc::new(MemoryRecorder::new());
    telemetry::scoped(rec.clone(), || {
        let _main = telemetry::span("main_root");
        std::thread::scope(|s| {
            s.spawn(|| telemetry::time("worker_root", || ()));
        });
    });
    let report = rec.report();
    let roots: Vec<&str> = report.spans.iter().map(|s| s.name.as_str()).collect();
    assert!(roots.contains(&"main_root"));
    assert!(roots.contains(&"worker_root"));
    // The worker span must NOT appear under the main thread's root.
    assert!(report.spans[0].children.is_empty());
}

#[test]
fn histogram_bucket_boundaries_are_upper_inclusive_powers_of_four() {
    // Every boundary value lands in its own bucket; boundary + 1 in the
    // next; everything past the last boundary overflows.
    for (i, &bound) in HISTOGRAM_BOUNDS_NS.iter().enumerate() {
        assert_eq!(bucket_index(bound), i);
        assert_eq!(bucket_index(bound + 1), i + 1);
    }
    assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);

    let mut h = Histogram::new();
    h.record(HISTOGRAM_BOUNDS_NS[3]); // 64 µs → bucket 3
    h.record(HISTOGRAM_BOUNDS_NS[3] + 1); // → bucket 4
    assert_eq!(h.buckets[3], 1);
    assert_eq!(h.buckets[4], 1);
    assert_eq!(h.count, 2);
}

#[test]
fn json_report_round_trips_through_vendored_serde_json() {
    let rec = Arc::new(MemoryRecorder::new());
    telemetry::scoped(rec.clone(), || {
        let _q = telemetry::span("db.execute");
        telemetry::time("db.exec.scan", || ());
        telemetry::counter("db.scan.rows_out", 1234);
        telemetry::gauge("rl.policy_loss", -0.125);
        telemetry::gauge("rl.policy_loss", 0.5);
        telemetry::observe_ns("session.latency.subset_ns", 42_000);
        telemetry::observe_ns("session.latency.subset_ns", 7_000_000);
    });
    let report = rec.report();
    let json = report.to_json_pretty().unwrap();
    let back = TelemetryReport::from_json(&json).unwrap();
    assert_eq!(back, report, "JSON round-trip must be lossless");

    // Spot-check the structure survived.
    assert_eq!(back.counters["db.scan.rows_out"], 1234);
    let g = &back.gauges["rl.policy_loss"];
    assert_eq!(g.last, 0.5);
    assert_eq!(g.min, -0.125);
    assert_eq!(g.count, 2);
    let h = &back.histograms["session.latency.subset_ns"];
    assert_eq!(h.count, 2);
    assert_eq!(h.min_ns, 42_000);
    assert_eq!(h.max_ns, 7_000_000);
    assert_eq!(h.buckets.len(), HISTOGRAM_BUCKETS);
    let scan = back.find_span("db.exec.scan").unwrap();
    assert_eq!(scan.count, 1);
}

#[test]
fn noop_recorder_records_no_spans() {
    // Install the no-op recorder and emit everything; then swap in a
    // memory recorder and confirm nothing leaked across.
    let noop = Arc::new(NoopRecorder);
    telemetry::scoped(noop, || {
        let _s = telemetry::span("invisible");
        telemetry::counter("invisible", 5);
        telemetry::gauge("invisible", 5.0);
        telemetry::observe_ns("invisible", 5);
    });
    // NoopRecorder's own methods observably do nothing.
    let rec = MemoryRecorder::new();
    NoopRecorder.span_enter("x");
    NoopRecorder.span_exit("x", 1);
    NoopRecorder.counter("x", 1);
    let empty = rec.report();
    assert!(empty.spans.is_empty());
    assert!(empty.counters.is_empty());
    assert!(empty.gauges.is_empty());
    assert!(empty.histograms.is_empty());

    // And with no recorder installed at all, emissions are dropped.
    assert!(!telemetry::enabled());
    telemetry::counter("dropped", 1);
    let _s = telemetry::span("dropped");
    assert!(_s.elapsed().is_none());
}

#[test]
fn reset_clears_recorded_state() {
    let rec = Arc::new(MemoryRecorder::new());
    telemetry::scoped(rec.clone(), || {
        telemetry::counter("c", 1);
        telemetry::time("s", || ());
        rec.reset();
        telemetry::counter("after_reset", 2);
    });
    let report = rec.report();
    assert!(report.spans.is_empty());
    assert_eq!(report.counters.len(), 1);
    assert_eq!(report.counters["after_reset"], 2);
}
