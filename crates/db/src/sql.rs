//! SQL text front-end for the supported subset.
//!
//! Grammar (case-insensitive keywords):
//!
//! ```text
//! query   := SELECT [DISTINCT] select FROM tables [WHERE expr]
//!            [GROUP BY cols] [ORDER BY key (, key)*] [LIMIT int]
//! select  := '*' | item (',' item)*
//! item    := (COUNT|SUM|AVG|MIN|MAX) '(' ('*'|colref) ')' | colref
//! tables  := tref (',' tref)* (JOIN tref ON colref '=' colref)*
//! tref    := ident [AS? ident]
//! expr    := or-tree of comparisons, IN, BETWEEN, LIKE, IS [NOT] NULL,
//!            arithmetic, parentheses
//! ```
//!
//! Top-level `col = col` equality conjuncts in WHERE that span two different
//! table bindings are lifted into [`Query::joins`], so
//! `parse(q.to_sql()) == q` holds for queries built by the rest of the
//! system (see the proptest round-trip in `tests/`).

use crate::error::{DbError, DbResult};
use crate::expr::{ArithOp, CmpOp, ColRef, Expr};
use crate::query::{AggExpr, AggFunc, JoinCond, OrderKey, Query, SelectItem, TableRef};
use crate::value::Value;

// --------------------------------------------------------------------------
// Lexer
// --------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Int(i64),
    Float(f64),
    Str(String),
    Symbol(&'static str),
    Eof,
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
        }
    }

    fn error(&self, msg: impl Into<String>) -> DbError {
        DbError::Parse {
            message: msg.into(),
            position: self.pos,
        }
    }

    fn peek_byte(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn next_token(&mut self) -> DbResult<(Tok, usize)> {
        while matches!(self.peek_byte(), Some(b) if b.is_ascii_whitespace()) {
            self.pos += 1;
        }
        let start = self.pos;
        let Some(b) = self.peek_byte() else {
            return Ok((Tok::Eof, start));
        };
        // Identifiers / keywords
        if b.is_ascii_alphabetic() || b == b'_' {
            let mut end = self.pos;
            while matches!(self.src.get(end), Some(c) if c.is_ascii_alphanumeric() || *c == b'_') {
                end += 1;
            }
            let s = std::str::from_utf8(&self.src[self.pos..end])
                .map_err(|_| self.error("non-utf8 identifier"))?
                .to_string();
            self.pos = end;
            return Ok((Tok::Ident(s), start));
        }
        // Numbers
        if b.is_ascii_digit() {
            let mut end = self.pos;
            let mut is_float = false;
            while let Some(&c) = self.src.get(end) {
                if c.is_ascii_digit() {
                    end += 1;
                } else if c == b'.'
                    && !is_float
                    && matches!(self.src.get(end + 1), Some(d) if d.is_ascii_digit())
                {
                    is_float = true;
                    end += 1;
                } else if (c == b'e' || c == b'E')
                    && matches!(self.src.get(end + 1), Some(d) if d.is_ascii_digit() || *d == b'-' || *d == b'+')
                {
                    is_float = true;
                    end += 2;
                } else {
                    break;
                }
            }
            let text = std::str::from_utf8(&self.src[self.pos..end]).unwrap();
            self.pos = end;
            let tok = if is_float {
                Tok::Float(text.parse().map_err(|_| self.error("bad float literal"))?)
            } else {
                Tok::Int(text.parse().map_err(|_| self.error("bad int literal"))?)
            };
            return Ok((tok, start));
        }
        // Strings with '' escaping
        if b == b'\'' {
            let mut end = self.pos + 1;
            let mut out = String::new();
            loop {
                match self.src.get(end) {
                    Some(b'\'') if self.src.get(end + 1) == Some(&b'\'') => {
                        out.push('\'');
                        end += 2;
                    }
                    Some(b'\'') => {
                        end += 1;
                        break;
                    }
                    Some(&c) => {
                        out.push(c as char);
                        end += 1;
                    }
                    None => return Err(self.error("unterminated string literal")),
                }
            }
            self.pos = end;
            return Ok((Tok::Str(out), start));
        }
        // Symbols (two-char first)
        let two: &[(&[u8], &'static str)] =
            &[(b"<=", "<="), (b">=", ">="), (b"<>", "<>"), (b"!=", "<>")];
        for (pat, sym) in two {
            if self.src[self.pos..].starts_with(pat) {
                self.pos += 2;
                return Ok((Tok::Symbol(sym), start));
            }
        }
        let one: &[(u8, &'static str)] = &[
            (b',', ","),
            (b'(', "("),
            (b')', ")"),
            (b'=', "="),
            (b'<', "<"),
            (b'>', ">"),
            (b'+', "+"),
            (b'-', "-"),
            (b'*', "*"),
            (b'/', "/"),
            (b'.', "."),
            (b';', ";"),
        ];
        for &(pat, sym) in one {
            if b == pat {
                self.pos += 1;
                return Ok((Tok::Symbol(sym), start));
            }
        }
        Err(self.error(format!("unexpected character '{}'", b as char)))
    }
}

// --------------------------------------------------------------------------
// Parser
// --------------------------------------------------------------------------

struct Parser {
    toks: Vec<(Tok, usize)>,
    idx: usize,
}

impl Parser {
    fn new(src: &str) -> DbResult<Self> {
        let mut lex = Lexer::new(src);
        let mut toks = Vec::new();
        loop {
            let t = lex.next_token()?;
            let eof = t.0 == Tok::Eof;
            toks.push(t);
            if eof {
                break;
            }
        }
        Ok(Parser { toks, idx: 0 })
    }

    fn peek(&self) -> &Tok {
        &self.toks[self.idx].0
    }

    fn pos(&self) -> usize {
        self.toks[self.idx].1
    }

    fn error(&self, msg: impl Into<String>) -> DbError {
        DbError::Parse {
            message: msg.into(),
            position: self.pos(),
        }
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.idx].0.clone();
        if self.idx + 1 < self.toks.len() {
            self.idx += 1;
        }
        t
    }

    /// Consume an identifier matching `kw` case-insensitively.
    fn eat_kw(&mut self, kw: &str) -> bool {
        if let Tok::Ident(s) = self.peek() {
            if s.eq_ignore_ascii_case(kw) {
                self.bump();
                return true;
            }
        }
        false
    }

    fn peek_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Tok::Ident(s) if s.eq_ignore_ascii_case(kw))
    }

    fn expect_kw(&mut self, kw: &str) -> DbResult<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.error(format!("expected {kw}")))
        }
    }

    fn eat_sym(&mut self, sym: &str) -> bool {
        if matches!(self.peek(), Tok::Symbol(s) if *s == sym) {
            self.bump();
            return true;
        }
        false
    }

    fn expect_sym(&mut self, sym: &str) -> DbResult<()> {
        if self.eat_sym(sym) {
            Ok(())
        } else {
            Err(self.error(format!("expected '{sym}'")))
        }
    }

    fn ident(&mut self) -> DbResult<String> {
        match self.bump() {
            Tok::Ident(s) => Ok(s),
            other => Err(self.error(format!("expected identifier, found {other:?}"))),
        }
    }

    /// `ident` or `ident.ident`.
    fn colref(&mut self) -> DbResult<ColRef> {
        let first = self.ident()?;
        if self.eat_sym(".") {
            let col = self.ident()?;
            Ok(ColRef::new(first, col))
        } else {
            Ok(ColRef::bare(first))
        }
    }

    fn agg_func(name: &str) -> Option<AggFunc> {
        match name.to_ascii_uppercase().as_str() {
            "COUNT" => Some(AggFunc::Count),
            "SUM" => Some(AggFunc::Sum),
            "AVG" => Some(AggFunc::Avg),
            "MIN" => Some(AggFunc::Min),
            "MAX" => Some(AggFunc::Max),
            _ => None,
        }
    }

    fn query(&mut self) -> DbResult<Query> {
        self.expect_kw("SELECT")?;
        let distinct = self.eat_kw("DISTINCT");

        // Select list
        let mut select = Vec::new();
        loop {
            if self.eat_sym("*") {
                select.push(SelectItem::Star);
            } else if let Tok::Ident(name) = self.peek().clone() {
                if let Some(func) = Self::agg_func(&name) {
                    // Lookahead: aggregate only if followed by '('.
                    if matches!(self.toks.get(self.idx + 1), Some((Tok::Symbol("("), _))) {
                        self.bump();
                        self.expect_sym("(")?;
                        let arg = if self.eat_sym("*") {
                            None
                        } else {
                            Some(self.colref()?)
                        };
                        self.expect_sym(")")?;
                        select.push(SelectItem::Aggregate(AggExpr { func, arg }));
                    } else {
                        select.push(SelectItem::Column(self.colref()?));
                    }
                } else {
                    select.push(SelectItem::Column(self.colref()?));
                }
            } else {
                return Err(self.error("expected select item"));
            }
            if !self.eat_sym(",") {
                break;
            }
        }

        // FROM
        self.expect_kw("FROM")?;
        let mut from = Vec::new();
        let mut joins = Vec::new();
        from.push(self.table_ref()?);
        loop {
            if self.eat_sym(",") {
                from.push(self.table_ref()?);
                continue;
            }
            if self.peek_kw("INNER") {
                self.bump();
                self.expect_kw("JOIN")?;
            } else if !self.eat_kw("JOIN") {
                break;
            }
            from.push(self.table_ref()?);
            self.expect_kw("ON")?;
            let l = self.colref()?;
            self.expect_sym("=")?;
            let r = self.colref()?;
            joins.push(JoinCond::new(l, r));
        }

        // WHERE
        let mut predicate = None;
        if self.eat_kw("WHERE") {
            let e = self.expr()?;
            // Lift `col = col` conjuncts across different bindings into joins.
            let mut rest = Vec::new();
            for c in e.split_conjuncts() {
                match &c {
                    Expr::Cmp {
                        op: CmpOp::Eq,
                        lhs,
                        rhs,
                    } => match (lhs.as_ref(), rhs.as_ref()) {
                        (Expr::Column(a), Expr::Column(b)) if a.table != b.table => {
                            joins.push(JoinCond::new(a.clone(), b.clone()));
                        }
                        _ => rest.push(c),
                    },
                    _ => rest.push(c),
                }
            }
            predicate = Expr::conjunction(rest);
        }

        // GROUP BY
        let mut group_by = Vec::new();
        if self.eat_kw("GROUP") {
            self.expect_kw("BY")?;
            loop {
                group_by.push(self.colref()?);
                if !self.eat_sym(",") {
                    break;
                }
            }
        }

        // ORDER BY
        let mut order_by = Vec::new();
        if self.eat_kw("ORDER") {
            self.expect_kw("BY")?;
            loop {
                let column = self.colref()?;
                let desc = if self.eat_kw("DESC") {
                    true
                } else {
                    self.eat_kw("ASC");
                    false
                };
                order_by.push(OrderKey { column, desc });
                if !self.eat_sym(",") {
                    break;
                }
            }
        }

        // LIMIT
        let mut limit = None;
        if self.eat_kw("LIMIT") {
            match self.bump() {
                Tok::Int(n) if n >= 0 => limit = Some(n as usize),
                _ => return Err(self.error("expected non-negative integer after LIMIT")),
            }
        }

        self.eat_sym(";");
        if self.peek() != &Tok::Eof {
            return Err(self.error("trailing input after query"));
        }

        Ok(Query {
            select,
            distinct,
            from,
            joins,
            predicate,
            group_by,
            order_by,
            limit,
        })
    }

    fn table_ref(&mut self) -> DbResult<TableRef> {
        let table = self.ident()?;
        // Optional alias: `AS x` or bare identifier that is not a keyword.
        if self.eat_kw("AS") {
            let alias = self.ident()?;
            return Ok(TableRef::aliased(table, alias));
        }
        const KEYWORDS: &[&str] = &[
            "WHERE", "GROUP", "ORDER", "LIMIT", "JOIN", "INNER", "ON", "AND", "OR",
        ];
        if let Tok::Ident(s) = self.peek() {
            if !KEYWORDS.iter().any(|k| s.eq_ignore_ascii_case(k)) {
                let alias = self.ident()?;
                return Ok(TableRef::aliased(table, alias));
            }
        }
        Ok(TableRef::new(table))
    }

    // Expression precedence: OR < AND < NOT < comparison-ish < add < mul < unary.
    fn expr(&mut self) -> DbResult<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> DbResult<Expr> {
        let mut lhs = self.and_expr()?;
        while self.eat_kw("OR") {
            let rhs = self.and_expr()?;
            lhs = Expr::or(lhs, rhs);
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> DbResult<Expr> {
        let mut lhs = self.not_expr()?;
        while self.eat_kw("AND") {
            let rhs = self.not_expr()?;
            lhs = Expr::and(lhs, rhs);
        }
        Ok(lhs)
    }

    fn not_expr(&mut self) -> DbResult<Expr> {
        if self.eat_kw("NOT") {
            let inner = self.not_expr()?;
            return Ok(Expr::Not(Box::new(inner)));
        }
        self.comparison()
    }

    fn comparison(&mut self) -> DbResult<Expr> {
        let lhs = self.add_expr()?;

        // IS [NOT] NULL
        if self.eat_kw("IS") {
            let negated = self.eat_kw("NOT");
            self.expect_kw("NULL")?;
            return Ok(Expr::IsNull {
                expr: Box::new(lhs),
                negated,
            });
        }

        // [NOT] IN / BETWEEN / LIKE
        let negated = self.eat_kw("NOT");
        if self.eat_kw("IN") {
            self.expect_sym("(")?;
            let mut list = Vec::new();
            loop {
                list.push(self.literal_value()?);
                if !self.eat_sym(",") {
                    break;
                }
            }
            self.expect_sym(")")?;
            return Ok(Expr::In {
                expr: Box::new(lhs),
                list,
                negated,
            });
        }
        if self.eat_kw("BETWEEN") {
            let low = self.add_expr()?;
            self.expect_kw("AND")?;
            let high = self.add_expr()?;
            return Ok(Expr::Between {
                expr: Box::new(lhs),
                low: Box::new(low),
                high: Box::new(high),
                negated,
            });
        }
        if self.eat_kw("LIKE") {
            match self.bump() {
                Tok::Str(p) => {
                    return Ok(Expr::Like {
                        expr: Box::new(lhs),
                        pattern: p,
                        negated,
                    })
                }
                _ => return Err(self.error("expected string pattern after LIKE")),
            }
        }
        if negated {
            return Err(self.error("expected IN, BETWEEN or LIKE after NOT"));
        }

        // Binary comparison
        let op = match self.peek() {
            Tok::Symbol("=") => Some(CmpOp::Eq),
            Tok::Symbol("<>") => Some(CmpOp::Ne),
            Tok::Symbol("<") => Some(CmpOp::Lt),
            Tok::Symbol("<=") => Some(CmpOp::Le),
            Tok::Symbol(">") => Some(CmpOp::Gt),
            Tok::Symbol(">=") => Some(CmpOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let rhs = self.add_expr()?;
            return Ok(Expr::cmp(op, lhs, rhs));
        }
        Ok(lhs)
    }

    fn add_expr(&mut self) -> DbResult<Expr> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Tok::Symbol("+") => Some(ArithOp::Add),
                Tok::Symbol("-") => Some(ArithOp::Sub),
                _ => None,
            };
            let Some(op) = op else { break };
            self.bump();
            let rhs = self.mul_expr()?;
            lhs = Expr::Arith {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn mul_expr(&mut self) -> DbResult<Expr> {
        let mut lhs = self.unary()?;
        loop {
            let op = match self.peek() {
                Tok::Symbol("*") => Some(ArithOp::Mul),
                Tok::Symbol("/") => Some(ArithOp::Div),
                _ => None,
            };
            let Some(op) = op else { break };
            self.bump();
            let rhs = self.unary()?;
            lhs = Expr::Arith {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> DbResult<Expr> {
        if self.eat_sym("-") {
            // Fold negation into numeric literals; otherwise 0 - x.
            return Ok(match self.unary()? {
                Expr::Literal(Value::Int(i)) => Expr::Literal(Value::Int(-i)),
                Expr::Literal(Value::Float(f)) => Expr::Literal(Value::Float(-f)),
                other => Expr::Arith {
                    op: ArithOp::Sub,
                    lhs: Box::new(Expr::lit(0)),
                    rhs: Box::new(other),
                },
            });
        }
        self.primary()
    }

    fn primary(&mut self) -> DbResult<Expr> {
        if self.eat_sym("(") {
            let e = self.expr()?;
            self.expect_sym(")")?;
            return Ok(e);
        }
        match self.peek().clone() {
            Tok::Int(i) => {
                self.bump();
                Ok(Expr::lit(i))
            }
            Tok::Float(f) => {
                self.bump();
                Ok(Expr::lit(f))
            }
            Tok::Str(s) => {
                self.bump();
                Ok(Expr::Literal(Value::Str(s)))
            }
            Tok::Ident(s) if s.eq_ignore_ascii_case("NULL") => {
                self.bump();
                Ok(Expr::Literal(Value::Null))
            }
            Tok::Ident(s) if s.eq_ignore_ascii_case("TRUE") => {
                self.bump();
                Ok(Expr::Literal(Value::Bool(true)))
            }
            Tok::Ident(s) if s.eq_ignore_ascii_case("FALSE") => {
                self.bump();
                Ok(Expr::Literal(Value::Bool(false)))
            }
            Tok::Ident(_) => Ok(Expr::Column(self.colref()?)),
            other => Err(self.error(format!("unexpected token {other:?}"))),
        }
    }

    fn literal_value(&mut self) -> DbResult<Value> {
        let neg = self.eat_sym("-");
        match self.bump() {
            Tok::Int(i) => Ok(Value::Int(if neg { -i } else { i })),
            Tok::Float(f) => Ok(Value::Float(if neg { -f } else { f })),
            Tok::Str(s) if !neg => Ok(Value::Str(s)),
            Tok::Ident(s) if !neg && s.eq_ignore_ascii_case("NULL") => Ok(Value::Null),
            Tok::Ident(s) if !neg && s.eq_ignore_ascii_case("TRUE") => Ok(Value::Bool(true)),
            Tok::Ident(s) if !neg && s.eq_ignore_ascii_case("FALSE") => Ok(Value::Bool(false)),
            other => Err(self.error(format!("expected literal, found {other:?}"))),
        }
    }
}

/// Parse one SQL statement into a [`Query`].
pub fn parse(text: &str) -> DbResult<Query> {
    Parser::new(text)?.query()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_select() {
        let q = parse("SELECT * FROM movies").unwrap();
        assert_eq!(q, Query::scan("movies"));
    }

    #[test]
    fn full_spj_roundtrip() {
        let text = "SELECT m.title FROM movies AS m, cast_info AS c \
                    WHERE m.id = c.movie_id AND m.year > 2000 LIMIT 10";
        let q = parse(text).unwrap();
        assert_eq!(q.joins.len(), 1);
        assert_eq!(q.to_sql(), text);
        assert_eq!(parse(&q.to_sql()).unwrap(), q);
    }

    #[test]
    fn aggregates_group_order() {
        let q = parse(
            "SELECT f.carrier, AVG(f.dep_delay), COUNT(*) FROM flights AS f \
             WHERE f.dep_delay > 30 GROUP BY f.carrier ORDER BY f.carrier DESC LIMIT 5",
        )
        .unwrap();
        assert!(q.is_aggregate());
        assert_eq!(q.group_by.len(), 1);
        assert!(q.order_by[0].desc);
        assert_eq!(q.limit, Some(5));
        assert_eq!(parse(&q.to_sql()).unwrap(), q);
    }

    #[test]
    fn join_on_syntax() {
        let q = parse("SELECT * FROM a JOIN b ON a.x = b.y WHERE a.z < 3").unwrap();
        assert_eq!(q.from.len(), 2);
        assert_eq!(q.joins.len(), 1);
        assert!(q.predicate.is_some());
    }

    #[test]
    fn in_between_like_is_null() {
        let q = parse(
            "SELECT * FROM t WHERE t.a IN (1, 2, 3) AND t.b BETWEEN 5 AND 9 \
             AND t.c LIKE '%x%' AND t.d IS NOT NULL AND t.e NOT IN ('u', 'v')",
        )
        .unwrap();
        let conjs = q.predicate.unwrap().split_conjuncts();
        assert_eq!(conjs.len(), 5);
        assert!(matches!(&conjs[0], Expr::In { negated: false, .. }));
        assert!(matches!(&conjs[1], Expr::Between { .. }));
        assert!(matches!(&conjs[2], Expr::Like { .. }));
        assert!(matches!(&conjs[3], Expr::IsNull { negated: true, .. }));
        assert!(matches!(&conjs[4], Expr::In { negated: true, .. }));
    }

    #[test]
    fn string_escape_roundtrip() {
        let q = parse("SELECT * FROM t WHERE t.name = 'it''s'").unwrap();
        assert_eq!(parse(&q.to_sql()).unwrap(), q);
    }

    #[test]
    fn negative_numbers_and_arith() {
        let q = parse("SELECT * FROM t WHERE t.a > -5 AND t.b + 2 * t.c <= 10.5").unwrap();
        assert!(q.predicate.is_some());
    }

    #[test]
    fn distinct_flag() {
        let q = parse("SELECT DISTINCT t.a FROM t").unwrap();
        assert!(q.distinct);
        assert_eq!(parse(&q.to_sql()).unwrap(), q);
    }

    #[test]
    fn where_eq_between_same_alias_stays_predicate() {
        let q = parse("SELECT * FROM t WHERE t.a = t.b").unwrap();
        assert!(q.joins.is_empty());
        assert!(q.predicate.is_some());
    }

    #[test]
    fn parse_errors() {
        assert!(parse("SELECT").is_err());
        assert!(parse("SELECT * FROM").is_err());
        assert!(parse("SELECT * FROM t WHERE").is_err());
        assert!(parse("SELECT * FROM t LIMIT x").is_err());
        assert!(parse("SELECT * FROM t WHERE t.a = 'unterminated").is_err());
        assert!(parse("SELECT * FROM t extra garbage !").is_err());
    }

    #[test]
    fn keywords_case_insensitive() {
        let q = parse("select m.title from movies m where m.year between 1990 and 2000").unwrap();
        assert_eq!(q.from[0].alias.as_deref(), Some("m"));
        assert!(q.predicate.is_some());
    }

    #[test]
    fn count_named_column_not_aggregate_without_paren() {
        // A column actually named "count" should not be parsed as a call.
        let q = parse("SELECT t.count FROM t").unwrap();
        assert!(!q.is_aggregate());
    }
}
