//! # asqp-db — relational substrate for ASQP-RL
//!
//! A small but complete in-memory relational engine:
//!
//! * columnar storage with dictionary-encoded strings ([`Table`], [`Column`])
//! * a SQL subset (SPJ + aggregates) with a text parser ([`sql::parse`]) and
//!   canonical printer ([`Query::to_sql`])
//! * an executor with predicate pushdown and hash joins
//!   ([`Database::execute`]), including per-row **lineage**
//!   ([`Database::execute_with_lineage`]) mapping result rows back to base
//!   rows — the hook ASQP-RL's pre-processing uses to build its action space
//! * a cost-based optimizer ([`plan_query`]) over a logical-plan IR
//!   ([`plan`]): predicate/projection/limit pushdown plus histogram-driven
//!   join reordering, with an LRU [`PlanCache`] keyed by normalized SQL so
//!   the RL loop's templated queries replan once, not thousands of times
//! * table/column statistics ([`TableStats`]) feeding workload synthesis and
//!   sampling baselines
//! * sub-database materialisation ([`Database::subset`]) used to evaluate
//!   approximation sets
//!
//! The engine favours clarity and determinism over raw speed, but joins are
//! hash-based and intermediates are row-id tuples, so the scale used in the
//! experiments (10⁵–10⁶ tuples) executes comfortably.

pub mod catalog;
pub mod column;
pub mod csv;
pub mod error;
pub mod exec;
pub mod explain;
pub mod expr;
pub mod optimizer;
pub mod plan;
pub mod plan_cache;
pub mod query;
pub mod schema;
pub mod sql;
pub mod sql_stmt;
pub mod stats;
pub mod table;
pub mod value;
pub mod workload;
pub mod zonemap;

pub use catalog::Database;
pub use column::{Column, ColumnData};
pub use error::{DbError, DbResult, ErrorClass};
pub use exec::{
    execute_nested_loop, execute_with_options, ExecMode, ExecOptions, ExecTrace, Lineage,
    QueryOutput, ResultSet,
};
pub use explain::{explain, explain_analyze};
pub use expr::{ArithOp, CmpOp, ColRef, Expr};
pub use optimizer::{optimize, plan_query, OptimizerMode, PhysicalPlan, PlanCacheStatus};
pub use plan::{LogicalPlan, PlanContext};
pub use plan_cache::PlanCache;
pub use query::{AggExpr, AggFunc, JoinCond, OrderKey, Query, QueryBuilder, SelectItem, TableRef};
pub use schema::{ColumnDef, Schema};
pub use sql_stmt::{execute_statement, parse_statement, Statement, StatementResult};
pub use stats::{ColumnStats, StatsAccum, TableStats};
pub use table::Table;
pub use value::{Row, Value, ValueType};
pub use workload::Workload;
