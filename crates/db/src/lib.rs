//! # asqp-db — relational substrate for ASQP-RL
//!
//! A small but complete in-memory relational engine:
//!
//! * columnar storage with dictionary-encoded strings ([`Table`], [`Column`])
//! * a SQL subset (SPJ + aggregates) with a text parser ([`sql::parse`]) and
//!   canonical printer ([`Query::to_sql`])
//! * an executor with predicate pushdown and hash joins
//!   ([`Database::execute`]), including per-row **lineage**
//!   ([`Database::execute_with_lineage`]) mapping result rows back to base
//!   rows — the hook ASQP-RL's pre-processing uses to build its action space
//! * table/column statistics ([`TableStats`]) feeding workload synthesis and
//!   sampling baselines
//! * sub-database materialisation ([`Database::subset`]) used to evaluate
//!   approximation sets
//!
//! The engine favours clarity and determinism over raw speed, but joins are
//! hash-based and intermediates are row-id tuples, so the scale used in the
//! experiments (10⁵–10⁶ tuples) executes comfortably.

pub mod catalog;
pub mod column;
pub mod csv;
pub mod error;
pub mod exec;
pub mod explain;
pub mod expr;
pub mod query;
pub mod schema;
pub mod sql;
pub mod sql_stmt;
pub mod stats;
pub mod table;
pub mod value;
pub mod workload;
pub mod zonemap;

pub use catalog::Database;
pub use column::{Column, ColumnData};
pub use error::{DbError, DbResult, ErrorClass};
pub use exec::{
    execute_nested_loop, execute_with_options, ExecMode, ExecOptions, Lineage, QueryOutput,
    ResultSet,
};
pub use explain::explain;
pub use expr::{ArithOp, CmpOp, ColRef, Expr};
pub use query::{AggExpr, AggFunc, JoinCond, OrderKey, Query, QueryBuilder, SelectItem, TableRef};
pub use schema::{ColumnDef, Schema};
pub use sql_stmt::{execute_statement, parse_statement, Statement, StatementResult};
pub use stats::{ColumnStats, TableStats};
pub use table::Table;
pub use value::{Row, Value, ValueType};
pub use workload::Workload;
