//! Columnar storage. Each column stores its values in a typed vector with a
//! validity bitmap; strings are dictionary-encoded, which both shrinks the
//! IMDB-style text-heavy tables and makes equality predicates cheap.

use crate::error::{DbError, DbResult};
use crate::value::{Value, ValueType};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Typed column payload.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum ColumnData {
    Int(Vec<i64>),
    Float(Vec<f64>),
    /// Dictionary-encoded strings: `codes[i]` indexes into `dict`.
    Str {
        codes: Vec<u32>,
        dict: Vec<String>,
    },
    Bool(Vec<bool>),
}

/// One stored column: payload + validity bitmap (`true` = non-null).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Column {
    data: ColumnData,
    validity: Vec<bool>,
    /// Reverse dictionary kept only while building (not serialised).
    #[serde(skip)]
    dict_index: HashMap<String, u32>,
}

impl Column {
    pub fn new(ty: ValueType) -> Self {
        let data = match ty {
            ValueType::Int => ColumnData::Int(Vec::new()),
            ValueType::Float => ColumnData::Float(Vec::new()),
            ValueType::Str => ColumnData::Str {
                codes: Vec::new(),
                dict: Vec::new(),
            },
            ValueType::Bool => ColumnData::Bool(Vec::new()),
        };
        Column {
            data,
            validity: Vec::new(),
            dict_index: HashMap::new(),
        }
    }

    pub fn with_capacity(ty: ValueType, cap: usize) -> Self {
        let mut c = Column::new(ty);
        match &mut c.data {
            ColumnData::Int(v) => v.reserve(cap),
            ColumnData::Float(v) => v.reserve(cap),
            ColumnData::Str { codes, .. } => codes.reserve(cap),
            ColumnData::Bool(v) => v.reserve(cap),
        }
        c.validity.reserve(cap);
        c
    }

    pub fn ty(&self) -> ValueType {
        match &self.data {
            ColumnData::Int(_) => ValueType::Int,
            ColumnData::Float(_) => ValueType::Float,
            ColumnData::Str { .. } => ValueType::Str,
            ColumnData::Bool(_) => ValueType::Bool,
        }
    }

    pub fn len(&self) -> usize {
        self.validity.len()
    }

    pub fn is_empty(&self) -> bool {
        self.validity.is_empty()
    }

    pub fn is_null(&self, idx: usize) -> bool {
        !self.validity[idx]
    }

    /// Append one value; `Null` is admitted regardless of type (nullability
    /// is the schema's concern, enforced by [`crate::table::Table::push_row`]).
    pub fn push(&mut self, v: &Value) -> DbResult<()> {
        if v.is_null() {
            self.validity.push(false);
            match &mut self.data {
                ColumnData::Int(d) => d.push(0),
                ColumnData::Float(d) => d.push(0.0),
                ColumnData::Str { codes, .. } => codes.push(0),
                ColumnData::Bool(d) => d.push(false),
            }
            return Ok(());
        }
        match (&mut self.data, v) {
            (ColumnData::Int(d), Value::Int(i)) => d.push(*i),
            (ColumnData::Float(d), Value::Float(f)) => d.push(*f),
            (ColumnData::Float(d), Value::Int(i)) => d.push(*i as f64),
            (ColumnData::Bool(d), Value::Bool(b)) => d.push(*b),
            (ColumnData::Str { codes, dict }, Value::Str(s)) => {
                let code = dict_code(dict, &mut self.dict_index, s);
                codes.push(code);
            }
            (_, v) => {
                return Err(DbError::TypeMismatch {
                    expected: self.ty().to_string(),
                    found: v
                        .value_type()
                        .map(|t| t.to_string())
                        .unwrap_or_else(|| "NULL".into()),
                })
            }
        }
        self.validity.push(true);
        Ok(())
    }

    /// Overwrite the value at `idx` in place, with the same typing rules as
    /// [`Column::push`]. Used by the incremental-update path; stale
    /// dictionary entries left behind by overwritten strings are harmless
    /// (codes simply stop referencing them).
    pub fn set(&mut self, idx: usize, v: &Value) -> DbResult<()> {
        if idx >= self.validity.len() {
            return Err(DbError::ShapeMismatch(format!(
                "row id {idx} out of range for column of {} rows",
                self.validity.len()
            )));
        }
        if v.is_null() {
            self.validity[idx] = false;
            return Ok(());
        }
        match (&mut self.data, v) {
            (ColumnData::Int(d), Value::Int(i)) => d[idx] = *i,
            (ColumnData::Float(d), Value::Float(f)) => d[idx] = *f,
            (ColumnData::Float(d), Value::Int(i)) => d[idx] = *i as f64,
            (ColumnData::Bool(d), Value::Bool(b)) => d[idx] = *b,
            (ColumnData::Str { codes, dict }, Value::Str(s)) => {
                codes[idx] = dict_code(dict, &mut self.dict_index, s);
            }
            (_, v) => {
                return Err(DbError::TypeMismatch {
                    expected: self.ty().to_string(),
                    found: v
                        .value_type()
                        .map(|t| t.to_string())
                        .unwrap_or_else(|| "NULL".into()),
                })
            }
        }
        self.validity[idx] = true;
        Ok(())
    }

    /// Materialise the value at `idx`.
    pub fn get(&self, idx: usize) -> Value {
        if !self.validity[idx] {
            return Value::Null;
        }
        match &self.data {
            ColumnData::Int(d) => Value::Int(d[idx]),
            ColumnData::Float(d) => Value::Float(d[idx]),
            ColumnData::Str { codes, dict } => Value::Str(dict[codes[idx] as usize].clone()),
            ColumnData::Bool(d) => Value::Bool(d[idx]),
        }
    }

    /// Non-allocating string access (None for null or non-string columns).
    pub fn get_str(&self, idx: usize) -> Option<&str> {
        if !self.validity[idx] {
            return None;
        }
        match &self.data {
            ColumnData::Str { codes, dict } => Some(&dict[codes[idx] as usize]),
            _ => None,
        }
    }

    /// Non-allocating numeric access (None for null or non-numeric).
    pub fn get_f64(&self, idx: usize) -> Option<f64> {
        if !self.validity[idx] {
            return None;
        }
        match &self.data {
            ColumnData::Int(d) => Some(d[idx] as f64),
            ColumnData::Float(d) => Some(d[idx]),
            _ => None,
        }
    }

    pub fn get_i64(&self, idx: usize) -> Option<i64> {
        if !self.validity[idx] {
            return None;
        }
        match &self.data {
            ColumnData::Int(d) => Some(d[idx]),
            _ => None,
        }
    }

    /// Dictionary code for string columns — cheap equality key.
    pub fn str_code(&self, idx: usize) -> Option<u32> {
        if !self.validity[idx] {
            return None;
        }
        match &self.data {
            ColumnData::Str { codes, .. } => Some(codes[idx]),
            _ => None,
        }
    }

    /// Number of distinct dictionary entries (string columns only).
    pub fn dict_len(&self) -> Option<usize> {
        match &self.data {
            ColumnData::Str { dict, .. } => Some(dict.len()),
            _ => None,
        }
    }

    /// Raw access to the payload for vectorised operators.
    pub fn data(&self) -> &ColumnData {
        &self.data
    }

    pub fn validity(&self) -> &[bool] {
        &self.validity
    }
}

/// Find-or-insert a dictionary code for `s`, lazily rebuilding the reverse
/// index when it is stale (it is not serialised, so a deserialised column
/// starts with a populated `dict` but an empty index).
fn dict_code(dict: &mut Vec<String>, index: &mut HashMap<String, u32>, s: &str) -> u32 {
    if index.len() < dict.len() {
        *index = dict
            .iter()
            .enumerate()
            .map(|(i, e)| (e.clone(), i as u32))
            .collect();
    }
    match index.get(s) {
        Some(&c) => c,
        None => {
            let c = dict.len() as u32;
            dict.push(s.to_string());
            index.insert(s.to_string(), c);
            c
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_get_roundtrip_all_types() {
        let cases: Vec<(ValueType, Value)> = vec![
            (ValueType::Int, Value::Int(-7)),
            (ValueType::Float, Value::Float(2.5)),
            (ValueType::Str, Value::Str("abc".into())),
            (ValueType::Bool, Value::Bool(true)),
        ];
        for (ty, v) in cases {
            let mut c = Column::new(ty);
            c.push(&v).unwrap();
            c.push(&Value::Null).unwrap();
            assert_eq!(c.get(0), v);
            assert_eq!(c.get(1), Value::Null);
            assert!(c.is_null(1));
            assert_eq!(c.len(), 2);
        }
    }

    #[test]
    fn dictionary_reuses_codes() {
        let mut c = Column::new(ValueType::Str);
        for s in ["x", "y", "x", "x"] {
            c.push(&Value::Str(s.into())).unwrap();
        }
        assert_eq!(c.dict_len(), Some(2));
        assert_eq!(c.str_code(0), c.str_code(2));
        assert_ne!(c.str_code(0), c.str_code(1));
        assert_eq!(c.get_str(3), Some("x"));
    }

    #[test]
    fn int_widens_into_float_column() {
        let mut c = Column::new(ValueType::Float);
        c.push(&Value::Int(4)).unwrap();
        assert_eq!(c.get(0), Value::Float(4.0));
        assert_eq!(c.get_f64(0), Some(4.0));
    }

    #[test]
    fn type_mismatch_rejected() {
        let mut c = Column::new(ValueType::Int);
        assert!(c.push(&Value::Str("no".into())).is_err());
        assert_eq!(c.len(), 0, "failed push must not grow the column");
    }
}
