//! Cost-based query optimizer.
//!
//! [`optimize`] lowers a [`Query`] to the logical IR ([`crate::plan`]),
//! applies the rewrite rules (predicate pushdown, projection pruning, limit
//! pushdown) and then reorders the join tree with a [`CostModel`] fed from
//! memoised [`TableStats`] histograms and zone-map bounds. [`plan_query`] is
//! the executor's entry point: it wraps `optimize` with the shared
//! [`PlanCache`](crate::plan_cache::PlanCache) so templated queries — same
//! shape, different literals — reuse their join order and pushdown decisions
//! instead of replanning.
//!
//! Everything here is deterministic: cost ties break toward the lowest
//! binding index, estimates are pure functions of table statistics, and the
//! cache evicts in tick order — the same query against the same data always
//! yields the same plan, which the determinism harness (fig02 double runs)
//! relies on.

use crate::catalog::Database;
use crate::error::DbResult;
use crate::expr::{CmpOp, ColRef, Expr};
use crate::plan::{
    build_join_tree, flatten_join_tree, limit_pushable, lower, prune_columns, push_limit,
    push_predicates, rebuild_chain, split_join_tree, LogicalPlan, PlanContext,
};
use crate::plan_cache::{normalized_key, schema_fingerprint, CachedPlan};
use crate::query::{JoinCond, Query};
use crate::stats::TableStats;
use crate::value::Value;
use crate::zonemap::{TableZones, ZoneBounds};
use asqp_telemetry as telemetry;
use std::sync::Arc;

/// How the executor chooses a join order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OptimizerMode {
    /// Full pipeline: rewrites + cost-based join reordering (+ plan cache).
    #[default]
    CostBased,
    /// Legacy greedy smallest-scan-first order, no planning. Kept as the
    /// oracle baseline and for A/B benchmarks.
    Heuristic,
}

/// Whether a plan came from the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlanCacheStatus {
    Hit,
    Miss,
    /// The cache was not consulted (disabled, or heuristic mode).
    #[default]
    Bypass,
}

impl PlanCacheStatus {
    pub fn as_str(&self) -> &'static str {
        match self {
            PlanCacheStatus::Hit => "hit",
            PlanCacheStatus::Miss => "miss",
            PlanCacheStatus::Bypass => "bypass",
        }
    }
}

/// The optimizer's decisions in the form the executor consumes.
#[derive(Debug, Clone, PartialEq)]
pub struct PhysicalPlan {
    /// Binding indices (into `Query::from`) in execution order.
    pub join_order: Vec<usize>,
    /// Shape-only flag (see [`CachedPlan::limit_pushdown`]).
    pub limit_pushdown: bool,
    /// The LIMIT value to stop the (single) scan at, instantiated from the
    /// live query when `limit_pushdown` holds.
    pub scan_limit: Option<usize>,
    /// Estimated filtered rows per binding.
    pub est_scan_rows: Vec<f64>,
    /// Estimated intermediate rows after each join step (len = bindings-1).
    pub est_join_rows: Vec<f64>,
    pub cache: PlanCacheStatus,
}

/// A fully optimized query: the annotated logical tree (for EXPLAIN) plus
/// the physical decisions (for the executor).
#[derive(Debug, Clone)]
pub struct Optimized {
    pub root: LogicalPlan,
    pub ctx: PlanContext,
    pub physical: PhysicalPlan,
}

/// Run the full optimization pipeline, without consulting the plan cache.
pub fn optimize(db: &Database, query: &Query) -> DbResult<Optimized> {
    let ctx = PlanContext::new(db, &query.from)?;
    let root = {
        let _s = telemetry::span("db.optimize.lower");
        lower(query, &ctx)?
    };
    let root = {
        let _s = telemetry::span("db.optimize.pushdown");
        push_limit(prune_columns(push_predicates(root, &ctx)?, &ctx)?)
    };
    let _s = telemetry::span("db.optimize.reorder");
    let limit_pushdown = limit_pushable(&root);
    let (chain, core) = split_join_tree(root);
    let (scans, conds) = flatten_join_tree(core);

    let model = CostModel::new(db, &ctx)?;
    let est_scan_rows: Vec<f64> = scans
        .iter()
        .map(|s| match s {
            LogicalPlan::Scan {
                binding, filters, ..
            } => model.scan_rows(*binding, filters),
            _ => unreachable!("flatten_join_tree returns scans"),
        })
        .collect();
    let mut triples: Vec<(usize, usize, f64)> = Vec::with_capacity(conds.len());
    for j in &conds {
        let lb = ctx.binding_of(&j.left)?;
        let rb = ctx.binding_of(&j.right)?;
        triples.push((lb, rb, model.join_selectivity(j)?));
    }
    let (join_order, est_join_rows) = cost_order(&est_scan_rows, &triples);

    let scans: Vec<LogicalPlan> = scans
        .into_iter()
        .map(|s| match s {
            LogicalPlan::Scan {
                binding,
                filters,
                columns,
                limit,
                ..
            } => LogicalPlan::Scan {
                est_rows: Some(est_scan_rows[binding]),
                binding,
                filters,
                columns,
                limit,
            },
            _ => unreachable!(),
        })
        .collect();
    let core = build_join_tree(scans, conds, &join_order, &est_join_rows, &ctx)?;
    let root = rebuild_chain(chain, core);

    let physical = PhysicalPlan {
        join_order,
        limit_pushdown,
        scan_limit: if limit_pushdown { query.limit } else { None },
        est_scan_rows,
        est_join_rows,
        cache: PlanCacheStatus::Bypass,
    };
    Ok(Optimized {
        root,
        ctx,
        physical,
    })
}

/// Plan a query for execution, going through the database's shared plan
/// cache when `use_cache` holds. Hits are validated against the executing
/// database's per-binding table names and schema fingerprints, so a cache
/// shared across clones/subsets can never produce an ill-typed plan.
pub fn plan_query(db: &Database, query: &Query, use_cache: bool) -> DbResult<PhysicalPlan> {
    let _s = telemetry::span("db.optimize");
    if !use_cache {
        return Ok(optimize(db, query)?.physical);
    }
    let key = normalized_key(query);
    if let Some(cached) = db.plan_cache().get(&key) {
        if cache_valid(db, query, &cached) {
            telemetry::counter("db.plan_cache.hit", 1);
            return Ok(PhysicalPlan {
                join_order: cached.join_order,
                limit_pushdown: cached.limit_pushdown,
                scan_limit: if cached.limit_pushdown {
                    query.limit
                } else {
                    None
                },
                est_scan_rows: cached.est_scan_rows,
                est_join_rows: cached.est_join_rows,
                cache: PlanCacheStatus::Hit,
            });
        }
    }
    telemetry::counter("db.plan_cache.miss", 1);
    let mut physical = optimize(db, query)?.physical;
    let mut tables = Vec::with_capacity(query.from.len());
    for tref in &query.from {
        let table = db.table(&tref.table)?;
        tables.push((
            tref.table.clone(),
            schema_fingerprint(table.schema()),
            table.data_version(),
        ));
    }
    db.plan_cache().put(
        key,
        CachedPlan {
            join_order: physical.join_order.clone(),
            limit_pushdown: physical.limit_pushdown,
            est_scan_rows: physical.est_scan_rows.clone(),
            est_join_rows: physical.est_join_rows.clone(),
            tables,
        },
    );
    physical.cache = PlanCacheStatus::Miss;
    Ok(physical)
}

/// A cached plan applies iff the query still names the same tables and each
/// table's schema fingerprint *and data version* are unchanged on the
/// executing database. The version check is what makes the cache safe under
/// incremental ingest: an append or update bumps the table's version, so
/// plans tuned to the old statistics are replanned instead of replayed.
fn cache_valid(db: &Database, query: &Query, cached: &CachedPlan) -> bool {
    if cached.tables.len() != query.from.len() || cached.join_order.len() != query.from.len() {
        return false;
    }
    query
        .from
        .iter()
        .zip(&cached.tables)
        .all(|(tref, (name, fp, version))| {
            tref.table == *name
                && db.table(&tref.table).is_ok_and(|t| {
                    schema_fingerprint(t.schema()) == *fp && t.data_version() == *version
                })
        })
}

/// Selectivity and cardinality estimates for one query's bindings, built on
/// memoised table statistics and zone-map whole-column bounds.
pub struct CostModel {
    stats: Vec<Arc<TableStats>>,
    zones: Vec<Arc<TableZones>>,
    ctx: PlanContext,
}

impl CostModel {
    pub fn new(db: &Database, ctx: &PlanContext) -> DbResult<CostModel> {
        let mut stats = Vec::with_capacity(ctx.bindings.len());
        let mut zones = Vec::with_capacity(ctx.bindings.len());
        for b in &ctx.bindings {
            stats.push(db.table_stats(&b.table)?);
            zones.push(db.table(&b.table)?.zone_maps());
        }
        Ok(CostModel {
            stats,
            zones,
            ctx: ctx.clone(),
        })
    }

    /// Estimated rows surviving a binding's pushed-down filters.
    pub fn scan_rows(&self, binding: usize, filters: &[Expr]) -> f64 {
        let rows = self.stats[binding].row_count as f64;
        filters
            .iter()
            .fold(rows, |acc, f| acc * self.conjunct_selectivity(binding, f))
    }

    /// Equi-join selectivity: `1 / max(distinct_left, distinct_right, 1)`,
    /// the textbook containment assumption.
    pub fn join_selectivity(&self, cond: &JoinCond) -> DbResult<f64> {
        let d = |c: &ColRef| -> DbResult<usize> {
            let b = self.ctx.binding_of(c)?;
            Ok(self.stats[b].column(&c.column).map_or(0, |cs| cs.distinct))
        };
        let dl = d(&cond.left)?;
        let dr = d(&cond.right)?;
        Ok(1.0 / dl.max(dr).max(1) as f64)
    }

    /// Zone-map whole-column numeric bounds for a column, if tracked.
    fn zone_bounds(&self, binding: usize, column: &str) -> Option<(f64, f64)> {
        let ci = self.ctx.bindings[binding]
            .columns
            .iter()
            .position(|n| n == column)?;
        let zones = self.zones[binding].columns.get(ci)?.as_ref()?;
        match zones.whole.bounds? {
            ZoneBounds::Int { min, max } => Some((min as f64, max as f64)),
            ZoneBounds::Float { min, max } => Some((min, max)),
        }
    }

    /// Selectivity of a single-binding conjunct. Histogram overlap for
    /// ranges, top-value frequencies (falling back to `1/distinct`) for
    /// equality, null fractions for IS NULL; zone-map bounds prove empty
    /// ranges outright. Unknown shapes estimate 0.5.
    pub fn conjunct_selectivity(&self, binding: usize, e: &Expr) -> f64 {
        let stats = &self.stats[binding];
        let rows = stats.row_count as f64;
        if rows == 0.0 {
            return 0.0;
        }
        let flip = |s: f64, negated: bool| {
            if negated {
                (1.0 - s).clamp(0.0, 1.0)
            } else {
                s
            }
        };
        match e {
            Expr::Between {
                expr,
                low,
                high,
                negated,
            } => {
                let (Expr::Column(c), Expr::Literal(lo), Expr::Literal(hi)) =
                    (&**expr, &**low, &**high)
                else {
                    return 0.5;
                };
                let (Some(lo), Some(hi)) = (lo.as_f64(), hi.as_f64()) else {
                    return 0.5;
                };
                flip(self.range_sel(binding, &c.column, lo, hi), *negated)
            }
            Expr::Cmp { op, lhs, rhs } => {
                // Normalise to column-op-literal, flipping when reversed.
                let (c, op, lit) = match (&**lhs, &**rhs) {
                    (Expr::Column(c), Expr::Literal(v)) => (c, *op, v),
                    (Expr::Literal(v), Expr::Column(c)) => (c, op.flip(), v),
                    _ => return 0.5,
                };
                match op {
                    CmpOp::Eq => self.eq_sel(binding, &c.column, lit),
                    CmpOp::Ne => flip(self.eq_sel(binding, &c.column, lit), true),
                    CmpOp::Lt | CmpOp::Le => match lit.as_f64() {
                        Some(f) => self.range_sel(binding, &c.column, f64::NEG_INFINITY, f),
                        None => 0.5,
                    },
                    CmpOp::Gt | CmpOp::Ge => match lit.as_f64() {
                        Some(f) => self.range_sel(binding, &c.column, f, f64::INFINITY),
                        None => 0.5,
                    },
                }
            }
            Expr::In {
                expr,
                list,
                negated,
            } => {
                let Expr::Column(c) = &**expr else { return 0.5 };
                let s: f64 = list
                    .iter()
                    .map(|v| self.eq_sel(binding, &c.column, v))
                    .sum();
                flip(s.min(1.0), *negated)
            }
            Expr::IsNull { expr, negated } => {
                let Expr::Column(c) = &**expr else { return 0.5 };
                let s = stats
                    .column(&c.column)
                    .map_or(0.0, |cs| cs.null_count as f64 / rows);
                flip(s, *negated)
            }
            Expr::Like { negated, .. } => flip(0.25, *negated),
            _ => 0.5,
        }
    }

    fn range_sel(&self, binding: usize, column: &str, lo: f64, hi: f64) -> f64 {
        if let Some((zmin, zmax)) = self.zone_bounds(binding, column) {
            if hi < zmin || lo > zmax {
                return 0.0; // zone maps prove the range empty
            }
        }
        self.stats[binding]
            .column(column)
            .map_or(0.5, |cs| cs.range_selectivity(lo, hi))
    }

    fn eq_sel(&self, binding: usize, column: &str, v: &Value) -> f64 {
        if let (Some(f), Some((zmin, zmax))) = (v.as_f64(), self.zone_bounds(binding, column)) {
            if f < zmin || f > zmax {
                return 0.0;
            }
        }
        let rows = self.stats[binding].row_count as f64;
        let Some(cs) = self.stats[binding].column(column) else {
            return 0.5;
        };
        if let Some((_, cnt)) = cs.top_values.iter().find(|(tv, _)| tv == v) {
            return *cnt as f64 / rows;
        }
        if cs.distinct == 0 {
            0.0
        } else {
            1.0 / cs.distinct as f64
        }
    }
}

/// Greedy cost-based join ordering: start at the binding with the smallest
/// estimated filtered scan, then repeatedly join the binding with the
/// smallest estimated intermediate — preferring bindings *connected* to the
/// joined set by an unused join condition (cartesian products only as a
/// last resort). Ties break toward the lowest binding index, so plan choice
/// is deterministic.
///
/// Returns the order and the estimated intermediate size after each step.
pub fn cost_order(ests: &[f64], conds: &[(usize, usize, f64)]) -> (Vec<usize>, Vec<f64>) {
    let nb = ests.len();
    let mut start = 0usize;
    for (b, &e) in ests.iter().enumerate().skip(1) {
        if e < ests[start] {
            start = b;
        }
    }
    let mut order = vec![start];
    let mut est_join_rows = Vec::with_capacity(nb.saturating_sub(1));
    let mut joined = vec![false; nb];
    joined[start] = true;
    let mut used = vec![false; conds.len()];
    let mut cur = ests[start];
    while order.len() < nb {
        // (connected, est, binding) — connected beats unconnected, then
        // lowest estimate, then lowest binding index (strict `<` below).
        let mut best: Option<(bool, f64, usize)> = None;
        for (b, &scan_est) in ests.iter().enumerate() {
            if joined[b] {
                continue;
            }
            let mut sel = 1.0;
            let mut connected = false;
            for (ci, &(lb, rb, s)) in conds.iter().enumerate() {
                if !used[ci] && ((joined[lb] && rb == b) || (joined[rb] && lb == b)) {
                    connected = true;
                    sel *= s;
                }
            }
            let est = cur * scan_est * sel;
            let wins = match best {
                None => true,
                Some((bc, be, _)) => (connected && !bc) || (connected == bc && est < be),
            };
            if wins {
                best = Some((connected, est, b));
            }
        }
        let (_, est, b) = best.expect("at least one unjoined binding remains");
        joined[b] = true;
        order.push(b);
        cur = est;
        est_join_rows.push(est);
        for (ci, &(lb, rb, _)) in conds.iter().enumerate() {
            if !used[ci] && joined[lb] && joined[rb] {
                used[ci] = true;
            }
        }
    }
    (order, est_join_rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::sql::parse;
    use crate::value::ValueType;

    /// fact(10_000 rows) joins dim(100) and tiny(5); a filter on dim leaves
    /// ~5 rows, so the cost-based order must start at dim, while the greedy
    /// smallest-scan heuristic would start at tiny.
    fn db() -> Database {
        let mut db = Database::new();
        let fact = db
            .create_table(
                "fact",
                Schema::build(&[
                    ("id", ValueType::Int),
                    ("dim_id", ValueType::Int),
                    ("tiny_id", ValueType::Int),
                ]),
            )
            .unwrap();
        for i in 0..10_000i64 {
            fact.push_row(&[Value::Int(i), Value::Int(i % 100), Value::Int(i % 5)])
                .unwrap();
        }
        let dim = db
            .create_table(
                "dim",
                Schema::build(&[("id", ValueType::Int), ("x", ValueType::Int)]),
            )
            .unwrap();
        for i in 0..100i64 {
            dim.push_row(&[Value::Int(i), Value::Int(i)]).unwrap();
        }
        let tiny = db
            .create_table("tiny", Schema::build(&[("id", ValueType::Int)]))
            .unwrap();
        for i in 0..5i64 {
            tiny.push_row(&[Value::Int(i)]).unwrap();
        }
        db
    }

    #[test]
    fn reorder_starts_at_most_selective_binding() {
        let db = db();
        let q = parse(
            "SELECT f.id FROM fact AS f, dim AS d, tiny AS y \
             WHERE f.dim_id = d.id AND f.tiny_id = y.id AND d.x < 3",
        )
        .unwrap();
        let opt = optimize(&db, &q).unwrap();
        // Bindings: f=0, d=1, y=2. The filtered dim scan (~3 rows) beats
        // tiny (5 rows) and starts; fact joins next (connected), tiny last.
        assert_eq!(opt.physical.join_order, vec![1, 0, 2]);
        assert!(opt.physical.est_scan_rows[1] < 5.0);
        assert_eq!(opt.physical.est_join_rows.len(), 2);
    }

    #[test]
    fn connected_bindings_preferred_over_cartesian() {
        // ests: a=10, b=1000, c=2; a-b joined by a selective cond, c isolated.
        // Pure min would pick c second (cartesian); connected-first picks b.
        let (order, _) = cost_order(&[10.0, 1000.0, 2.0], &[(0, 1, 0.001)]);
        assert_eq!(order, vec![2, 0, 1], "start min, then stay connected");

        let (order, _) = cost_order(&[10.0, 1000.0, 2.0], &[]);
        assert_eq!(order, vec![2, 0, 1], "no conds: ascending size");
    }

    #[test]
    fn zone_bounds_prove_empty_ranges() {
        let db = db();
        let q = parse("SELECT d.id FROM dim AS d WHERE d.x > 5000").unwrap();
        let opt = optimize(&db, &q).unwrap();
        assert_eq!(opt.physical.est_scan_rows, vec![0.0]);
    }

    #[test]
    fn plan_cache_hit_returns_same_decisions_with_live_limit() {
        let db = db();
        let q1 = parse("SELECT f.id FROM fact AS f WHERE f.dim_id = 3 LIMIT 7").unwrap();
        let q2 = parse("SELECT f.id FROM fact AS f WHERE f.dim_id = 90 LIMIT 11").unwrap();
        let p1 = plan_query(&db, &q1, true).unwrap();
        assert_eq!(p1.cache, PlanCacheStatus::Miss);
        assert!(p1.limit_pushdown);
        assert_eq!(p1.scan_limit, Some(7));
        let p2 = plan_query(&db, &q2, true).unwrap();
        assert_eq!(p2.cache, PlanCacheStatus::Hit);
        assert_eq!(p2.scan_limit, Some(11), "limit instantiated per query");
        assert_eq!(p2.join_order, p1.join_order);
    }

    #[test]
    fn cache_rejects_schema_changes() {
        let mut db = db();
        let q = parse("SELECT d.id FROM dim AS d WHERE d.x < 5").unwrap();
        assert_eq!(
            plan_query(&db, &q, true).unwrap().cache,
            PlanCacheStatus::Miss
        );
        assert_eq!(
            plan_query(&db, &q, true).unwrap().cache,
            PlanCacheStatus::Hit
        );

        // Replace dim with a different schema under the same name.
        db.drop_table("dim").unwrap();
        let dim = db
            .create_table(
                "dim",
                Schema::build(&[("id", ValueType::Int), ("x", ValueType::Float)]),
            )
            .unwrap();
        dim.push_row(&[Value::Int(1), Value::Float(0.5)]).unwrap();
        assert_eq!(
            plan_query(&db, &q, true).unwrap().cache,
            PlanCacheStatus::Miss,
            "fingerprint mismatch forces a replan"
        );
    }

    #[test]
    fn cache_rejects_data_changes() {
        // Regression test for the latent staleness bug: before data
        // versions were recorded, a cached plan survived appends — the
        // join order chosen for the old data kept being served even after
        // the tables' relative sizes inverted.
        let mut db = db();
        let q = parse("SELECT f.id FROM fact AS f, dim AS d WHERE f.dim_id = d.id").unwrap();
        assert_eq!(
            plan_query(&db, &q, true).unwrap().cache,
            PlanCacheStatus::Miss
        );
        assert_eq!(
            plan_query(&db, &q, true).unwrap().cache,
            PlanCacheStatus::Hit
        );

        let rows: Vec<Vec<Value>> = (0..10)
            .map(|i| vec![Value::Int(100 + i), Value::Int(100 + i)])
            .collect();
        db.append_rows("dim", &rows).unwrap();
        let replanned = plan_query(&db, &q, true).unwrap();
        assert_eq!(
            replanned.cache,
            PlanCacheStatus::Miss,
            "data-version mismatch forces a replan after an append"
        );
        assert_eq!(
            plan_query(&db, &q, true).unwrap().cache,
            PlanCacheStatus::Hit,
            "the refreshed entry is served again at the new version"
        );
    }

    #[test]
    fn subsets_hit_the_parent_cache() {
        let db = db();
        let q = parse("SELECT f.id FROM fact AS f, dim AS d WHERE f.dim_id = d.id").unwrap();
        assert_eq!(
            plan_query(&db, &q, true).unwrap().cache,
            PlanCacheStatus::Miss
        );
        let sub = db.subset(&std::collections::BTreeMap::new()).unwrap();
        assert_eq!(
            plan_query(&sub, &q, true).unwrap().cache,
            PlanCacheStatus::Hit,
            "subset shares the parent's plan cache and schemas"
        );
    }
}
