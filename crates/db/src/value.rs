//! SQL values with a *total* order and hash, so they can key hash joins,
//! group-by maps and sort operators without panics on NaN.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

/// Logical column types supported by the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ValueType {
    Int,
    Float,
    Str,
    Bool,
}

impl fmt::Display for ValueType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValueType::Int => write!(f, "INT"),
            ValueType::Float => write!(f, "FLOAT"),
            ValueType::Str => write!(f, "TEXT"),
            ValueType::Bool => write!(f, "BOOL"),
        }
    }
}

/// A single SQL value. `Null` is a first-class member so rows are plain
/// `Vec<Value>` with no `Option` wrapper.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Value {
    Null,
    Int(i64),
    Float(f64),
    Str(String),
    Bool(bool),
}

impl Value {
    /// Logical type of the value, `None` for `Null`.
    pub fn value_type(&self) -> Option<ValueType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(ValueType::Int),
            Value::Float(_) => Some(ValueType::Float),
            Value::Str(_) => Some(ValueType::Str),
            Value::Bool(_) => Some(ValueType::Bool),
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view used by arithmetic and aggregates: ints widen to f64.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// SQL three-valued comparison: `None` when either side is NULL or the
    /// types are incomparable; ints and floats compare numerically.
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => None,
            (Value::Int(a), Value::Int(b)) => Some(a.cmp(b)),
            (Value::Float(a), Value::Float(b)) => a.partial_cmp(b),
            (Value::Int(a), Value::Float(b)) => (*a as f64).partial_cmp(b),
            (Value::Float(a), Value::Int(b)) => a.partial_cmp(&(*b as f64)),
            (Value::Str(a), Value::Str(b)) => Some(a.cmp(b)),
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            _ => None,
        }
    }

    /// Rank used to make the total order deterministic across types.
    fn type_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) => 2,
            Value::Float(_) => 2, // ints and floats share a rank: numeric
            Value::Str(_) => 3,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    /// Total order: NULL < BOOL < numeric < TEXT; NaN sorts after all other
    /// floats; `1` and `1.0` are equal (numeric rank).
    fn cmp(&self, other: &Self) -> Ordering {
        let (ra, rb) = (self.type_rank(), other.type_rank());
        if ra != rb {
            return ra.cmp(&rb);
        }
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            (a, b) => {
                // Numeric rank: compare as f64 with NaN greatest.
                let fa = a.as_f64().expect("numeric rank implies numeric value");
                let fb = b.as_f64().expect("numeric rank implies numeric value");
                match (fa.is_nan(), fb.is_nan()) {
                    (true, true) => Ordering::Equal,
                    (true, false) => Ordering::Greater,
                    (false, true) => Ordering::Less,
                    (false, false) => fa.partial_cmp(&fb).unwrap_or(Ordering::Equal),
                }
            }
        }
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            Value::Bool(b) => {
                1u8.hash(state);
                b.hash(state);
            }
            // Ints and floats must hash alike when equal (1 == 1.0), so hash
            // the f64 bit pattern of the canonical numeric value.
            Value::Int(i) => {
                2u8.hash(state);
                canonical_f64_bits(*i as f64).hash(state);
            }
            Value::Float(f) => {
                2u8.hash(state);
                canonical_f64_bits(*f).hash(state);
            }
            Value::Str(s) => {
                3u8.hash(state);
                s.hash(state);
            }
        }
    }
}

/// Bit pattern with -0.0 folded into +0.0 and all NaNs folded together, so
/// `Hash` agrees with `Ord`. Also used by the executor's numeric join-key
/// fast path, which must hash exactly like `Value`.
pub(crate) fn canonical_f64_bits(f: f64) -> u64 {
    if f.is_nan() {
        f64::NAN.to_bits()
    } else if f == 0.0 {
        0.0f64.to_bits()
    } else {
        f.to_bits()
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "'{}'", s.replace('\'', "''")),
            Value::Bool(b) => write!(f, "{}", if *b { "TRUE" } else { "FALSE" }),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

/// A materialised result row.
pub type Row = Vec<Value>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn int_float_numeric_equality() {
        assert_eq!(Value::Int(1), Value::Float(1.0));
        assert_eq!(hash_of(&Value::Int(1)), hash_of(&Value::Float(1.0)));
        assert_ne!(Value::Int(1), Value::Float(1.5));
    }

    #[test]
    fn null_compares_less_in_total_order_but_none_in_sql() {
        assert!(Value::Null < Value::Int(i64::MIN));
        assert_eq!(Value::Null.sql_cmp(&Value::Int(0)), None);
        assert_eq!(Value::Int(0).sql_cmp(&Value::Null), None);
    }

    #[test]
    fn nan_totally_ordered_greatest_numeric() {
        let nan = Value::Float(f64::NAN);
        assert!(nan > Value::Float(f64::INFINITY));
        assert_eq!(nan.cmp(&Value::Float(f64::NAN)), Ordering::Equal);
        assert!(nan < Value::Str(String::new()));
    }

    #[test]
    fn negative_zero_equals_positive_zero() {
        assert_eq!(Value::Float(-0.0), Value::Float(0.0));
        assert_eq!(hash_of(&Value::Float(-0.0)), hash_of(&Value::Float(0.0)));
    }

    #[test]
    fn sql_cmp_mixed_numeric() {
        assert_eq!(
            Value::Int(2).sql_cmp(&Value::Float(1.5)),
            Some(Ordering::Greater)
        );
        assert_eq!(Value::Str("a".into()).sql_cmp(&Value::Int(1)), None);
    }

    #[test]
    fn display_escapes_quotes() {
        assert_eq!(Value::Str("it's".into()).to_string(), "'it''s'");
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(3).as_f64(), Some(3.0));
        assert_eq!(Value::Str("x".into()).as_f64(), None);
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert!(Value::Null.is_null());
        assert_eq!(Value::Null.value_type(), None);
        assert_eq!(Value::Float(1.0).value_type(), Some(ValueType::Float));
    }
}
