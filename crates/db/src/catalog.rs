//! The database catalog: a set of named tables plus convenience entry points
//! for executing queries.

use crate::error::{DbError, DbResult};
use crate::exec::{execute, execute_with_lineage, QueryOutput, ResultSet};
use crate::plan_cache::PlanCache;
use crate::query::Query;
use crate::schema::Schema;
use crate::sql;
use crate::stats::TableStats;
use crate::table::Table;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, RwLock};

/// Memoised full-database result cardinalities (`|q(D)|` in the paper's
/// Eq. 1), keyed by each query's canonical SQL. Derived state: cloning or
/// deserialising a database starts with an empty cache, and any mutation
/// entry point clears it.
#[derive(Debug, Default)]
struct CountCache(RwLock<HashMap<String, usize>>);

impl CountCache {
    fn get(&self, key: &str) -> Option<usize> {
        self.0
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .get(key)
            .copied()
    }

    fn put(&self, key: String, n: usize) {
        self.0
            .write()
            .unwrap_or_else(|e| e.into_inner())
            .insert(key, n);
    }

    fn clear(&self) {
        self.0.write().unwrap_or_else(|e| e.into_inner()).clear();
    }
}

impl Clone for CountCache {
    fn clone(&self) -> Self {
        CountCache::default()
    }
}

/// Memoised per-table [`TableStats`]. Derived state with the same lifecycle
/// as [`CountCache`]: cloning or deserialising starts empty, and every
/// mutation entry point clears it.
#[derive(Debug, Default)]
struct StatsCache(RwLock<HashMap<String, Arc<TableStats>>>);

impl StatsCache {
    fn get(&self, key: &str) -> Option<Arc<TableStats>> {
        self.0
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .get(key)
            .cloned()
    }

    fn put(&self, key: String, stats: Arc<TableStats>) {
        self.0
            .write()
            .unwrap_or_else(|e| e.into_inner())
            .insert(key, stats);
    }

    fn clear(&self) {
        self.0.write().unwrap_or_else(|e| e.into_inner()).clear();
    }
}

impl Clone for StatsCache {
    fn clone(&self) -> Self {
        StatsCache::default()
    }
}

/// An in-memory database: named tables in deterministic (sorted) order.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Database {
    tables: BTreeMap<String, Table>,
    #[serde(skip)]
    count_cache: CountCache,
    #[serde(skip)]
    stats_cache: StatsCache,
    /// Query-plan cache, deliberately *shared* (`Arc`) across clones and
    /// [`Database::subset`] outputs: subsets keep their parent's schemas, so
    /// plans transfer — and the RL reward loop, which executes the same
    /// templated queries against many subsets, hits instead of replanning.
    /// Safety does not depend on this sharing: every hit is re-validated
    /// against the executing database's schema fingerprints (see
    /// [`crate::plan_cache`]).
    #[serde(skip)]
    plan_cache: Arc<PlanCache>,
}

impl Database {
    pub fn new() -> Self {
        Database::default()
    }

    /// Register a table; the table's own name is the catalog key.
    pub fn add_table(&mut self, table: Table) -> DbResult<()> {
        if self.tables.contains_key(table.name()) {
            return Err(DbError::Duplicate(table.name().to_string()));
        }
        self.count_cache.clear();
        self.stats_cache.clear();
        self.tables.insert(table.name().to_string(), table);
        Ok(())
    }

    /// Create an empty table with the given schema and register it.
    pub fn create_table(&mut self, name: &str, schema: Schema) -> DbResult<&mut Table> {
        self.add_table(Table::new(name, schema))?;
        Ok(self.tables.get_mut(name).expect("just inserted"))
    }

    pub fn table(&self, name: &str) -> DbResult<&Table> {
        self.tables
            .get(name)
            .ok_or_else(|| DbError::UnknownTable(name.to_string()))
    }

    pub fn table_mut(&mut self, name: &str) -> DbResult<&mut Table> {
        // Handing out mutable table access may change any cached count or
        // statistic. (The shared plan cache is *not* cleared: cached plans
        // hold decisions and estimates, never data, so a stale entry can
        // only cost plan quality — and schema changes are caught by the
        // per-hit fingerprint validation.)
        self.count_cache.clear();
        self.stats_cache.clear();
        self.tables
            .get_mut(name)
            .ok_or_else(|| DbError::UnknownTable(name.to_string()))
    }

    pub fn has_table(&self, name: &str) -> bool {
        self.tables.contains_key(name)
    }

    /// Remove a table from the catalog, returning it.
    pub fn drop_table(&mut self, name: &str) -> DbResult<Table> {
        self.count_cache.clear();
        self.stats_cache.clear();
        self.tables
            .remove(name)
            .ok_or_else(|| DbError::UnknownTable(name.to_string()))
    }

    pub fn table_names(&self) -> impl Iterator<Item = &str> {
        self.tables.keys().map(|s| s.as_str())
    }

    pub fn tables(&self) -> impl Iterator<Item = &Table> {
        self.tables.values()
    }

    /// Total number of stored tuples across all tables.
    pub fn total_rows(&self) -> usize {
        self.tables.values().map(|t| t.row_count()).sum()
    }

    /// Execute a query AST.
    pub fn execute(&self, query: &Query) -> DbResult<ResultSet> {
        execute(self, query)
    }

    /// Execute and also report, per result row, which base-table rows
    /// produced it (the provenance ASQP-RL uses to build its action space).
    pub fn execute_with_lineage(&self, query: &Query) -> DbResult<QueryOutput> {
        execute_with_lineage(self, query)
    }

    /// Result cardinality `|q(D)|`, memoised across calls keyed by the
    /// query's canonical SQL. The Eq.-1 metric normalises every per-query
    /// fraction by this count, so scoring many candidate approximation sets
    /// against one workload re-uses each full-database execution.
    pub fn cached_row_count(&self, query: &Query) -> DbResult<usize> {
        let key = query.to_sql();
        if let Some(n) = self.count_cache.get(&key) {
            return Ok(n);
        }
        let n = self.execute(query)?.rows.len();
        self.count_cache.put(key, n);
        Ok(n)
    }

    /// Parse and execute SQL text.
    pub fn sql(&self, text: &str) -> DbResult<ResultSet> {
        let q = sql::parse(text)?;
        self.execute(&q)
    }

    /// Statistics for one table, memoised until the table mutates. The
    /// optimizer's cost model calls this per query; without memoisation
    /// every `explain()`/plan recomputed an O(rows × columns) pass.
    pub fn table_stats(&self, name: &str) -> DbResult<Arc<TableStats>> {
        if let Some(s) = self.stats_cache.get(name) {
            return Ok(s);
        }
        let s = Arc::new(TableStats::compute(self.table(name)?));
        self.stats_cache.put(name.to_string(), Arc::clone(&s));
        Ok(s)
    }

    /// The shared plan cache handle (see the field docs for the sharing
    /// contract).
    pub fn plan_cache(&self) -> &PlanCache {
        &self.plan_cache
    }

    /// Build a sub-database holding only the listed row ids per table.
    /// Tables absent from `selection` are created *empty* (schema kept), so
    /// every query valid on `self` remains valid on the subset — this is the
    /// approximation-set materialisation used throughout ASQP-RL.
    pub fn subset(&self, selection: &BTreeMap<String, Vec<usize>>) -> DbResult<Database> {
        let mut out = Database::new();
        for (name, table) in &self.tables {
            let sub = match selection.get(name) {
                Some(ids) => table.subset(ids)?,
                None => Table::new(name.clone(), table.schema().clone()),
            };
            out.add_table(sub)?;
        }
        // Attach the shared plan cache *after* the build loop: the subset
        // has identical schemas, so the parent's plans apply verbatim, and
        // attaching last keeps `add_table`'s cache-clearing away from the
        // shared handle.
        out.plan_cache = Arc::clone(&self.plan_cache);
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::{Value, ValueType};

    fn db() -> Database {
        let mut db = Database::new();
        let t = db
            .create_table("t", Schema::build(&[("id", ValueType::Int)]))
            .unwrap();
        for i in 0..5 {
            t.push_row(&[Value::Int(i)]).unwrap();
        }
        db
    }

    #[test]
    fn add_and_lookup() {
        let db = db();
        assert!(db.has_table("t"));
        assert!(db.table("missing").is_err());
        assert_eq!(db.total_rows(), 5);
    }

    #[test]
    fn duplicate_table_rejected() {
        let mut db = db();
        assert!(matches!(
            db.create_table("t", Schema::build(&[("x", ValueType::Int)])),
            Err(DbError::Duplicate(_))
        ));
    }

    #[test]
    fn table_stats_computed_once_per_table() {
        use asqp_telemetry as telemetry;
        use std::sync::Arc as StdArc;

        let mut db = db();
        let u = db
            .create_table("u", Schema::build(&[("y", ValueType::Int)]))
            .unwrap();
        u.push_row(&[Value::Int(7)]).unwrap();

        let rec = StdArc::new(telemetry::MemoryRecorder::new());
        telemetry::scoped(rec.clone(), || {
            for _ in 0..5 {
                db.table_stats("t").unwrap();
                db.table_stats("u").unwrap();
            }
        });
        assert_eq!(
            rec.report().counters["db.stats.computes"],
            2,
            "one compute per table, every later call served from the cache"
        );

        // Mutation invalidates; the next call recomputes exactly once.
        db.table_mut("t")
            .unwrap()
            .push_row(&[Value::Int(99)])
            .unwrap();
        let rec2 = StdArc::new(telemetry::MemoryRecorder::new());
        telemetry::scoped(rec2.clone(), || {
            db.table_stats("t").unwrap();
            db.table_stats("t").unwrap();
        });
        assert_eq!(rec2.report().counters["db.stats.computes"], 1);
        assert_eq!(db.table_stats("t").unwrap().row_count, 6);
    }

    #[test]
    fn subset_shares_parent_plan_cache() {
        let db = db();
        let sub = db.subset(&BTreeMap::new()).unwrap();
        assert!(std::ptr::eq(db.plan_cache(), sub.plan_cache()));
        // A plain clone also shares; deserialisation would start fresh.
        assert!(std::ptr::eq(db.plan_cache(), db.clone().plan_cache()));
    }

    #[test]
    fn subset_keeps_missing_tables_empty() {
        let db = db();
        let mut sel = BTreeMap::new();
        sel.insert("t".to_string(), vec![1usize, 3]);
        let sub = db.subset(&sel).unwrap();
        assert_eq!(sub.table("t").unwrap().row_count(), 2);

        let empty = db.subset(&BTreeMap::new()).unwrap();
        assert_eq!(empty.table("t").unwrap().row_count(), 0);
        assert_eq!(empty.table("t").unwrap().schema().len(), 1);
    }
}
