//! The database catalog: a set of named tables plus convenience entry points
//! for executing queries.

use crate::error::{DbError, DbResult};
use crate::exec::{execute, execute_with_lineage, QueryOutput, ResultSet};
use crate::plan_cache::PlanCache;
use crate::query::Query;
use crate::schema::Schema;
use crate::sql;
use crate::stats::{StatsAccum, TableStats};
use crate::table::Table;
use crate::value::Row;
use asqp_telemetry as telemetry;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, RwLock};

/// Memoised full-database result cardinalities (`|q(D)|` in the paper's
/// Eq. 1), keyed by each query's canonical SQL. Every entry records the
/// *data fingerprint* of the query's FROM tables at compute time; a lookup
/// whose fingerprint no longer matches is treated as a miss, so a stale
/// cardinality can never be served after an append or update. Cloning or
/// deserialising a database starts with an empty cache, and the wholesale
/// mutation entry points (`table_mut`, `add_table`, `drop_table`) still
/// clear it outright.
#[derive(Debug, Default)]
struct CountCache(RwLock<HashMap<String, (u64, usize)>>);

impl CountCache {
    /// Version-checked lookup: a hit requires the stored data fingerprint
    /// to equal `fingerprint`.
    fn get(&self, key: &str, fingerprint: u64) -> Option<usize> {
        match self
            .0
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .get(key)
            .copied()
        {
            Some((fp, n)) if fp == fingerprint => {
                telemetry::counter("db.count_cache.hit", 1);
                Some(n)
            }
            Some(_) => {
                telemetry::counter("db.count_cache.stale", 1);
                None
            }
            None => None,
        }
    }

    fn put(&self, key: String, fingerprint: u64, n: usize) {
        self.0
            .write()
            .unwrap_or_else(|e| e.into_inner())
            .insert(key, (fingerprint, n));
    }

    fn clear(&self) {
        self.0.write().unwrap_or_else(|e| e.into_inner()).clear();
    }
}

impl Clone for CountCache {
    fn clone(&self) -> Self {
        CountCache::default()
    }
}

/// One table's memoised statistics state: the order-insensitive accumulator
/// pinned to the data version it reflects, plus the (lazily) derived
/// [`TableStats`]. Keeping the accumulator lets an append absorb just the
/// new rows instead of rescanning the table; keeping derivation lazy means
/// a burst of appends pays one O(distinct) derive at the next read, not one
/// per batch.
#[derive(Debug)]
struct StatsEntry {
    version: u64,
    accum: StatsAccum,
    derived: Option<Arc<TableStats>>,
}

/// Memoised per-table statistics. Derived state with the same lifecycle as
/// [`CountCache`]: cloning or deserialising starts empty, wholesale
/// mutation entry points clear it, and the incremental entry points
/// ([`Database::append_rows`] / [`Database::update_rows`]) maintain live
/// entries in place.
#[derive(Debug, Default)]
struct StatsCache(RwLock<HashMap<String, StatsEntry>>);

impl StatsCache {
    /// Stats for `table` at its current version: served from the entry when
    /// fresh, derived from the cached accumulator when only derivation is
    /// missing, recomputed from scratch otherwise.
    fn get_or_compute(&self, table: &Table) -> Arc<TableStats> {
        let version = table.data_version();
        let mut map = self.0.write().unwrap_or_else(|e| e.into_inner());
        match map.get_mut(table.name()) {
            Some(e) if e.version == version => {
                if let Some(d) = &e.derived {
                    return Arc::clone(d);
                }
                let d = Arc::new(e.accum.derive(table.name(), table.schema()));
                e.derived = Some(Arc::clone(&d));
                d
            }
            _ => {
                let accum = StatsAccum::from_table(table);
                let d = Arc::new(accum.derive(table.name(), table.schema()));
                map.insert(
                    table.name().to_string(),
                    StatsEntry {
                        version,
                        accum,
                        derived: Some(Arc::clone(&d)),
                    },
                );
                d
            }
        }
    }

    /// Absorb an append into the cached accumulator, if the entry was
    /// current at `old_version`. A stale entry is dropped (the next read
    /// recomputes from scratch); a missing entry stays missing (lazy).
    fn absorb_append(&self, table: &Table, old_rows: usize, old_version: u64) {
        let mut map = self.0.write().unwrap_or_else(|e| e.into_inner());
        if let Some(e) = map.get_mut(table.name()) {
            if e.version == old_version {
                telemetry::counter("db.stats.incremental", 1);
                e.accum.absorb_rows(table, old_rows);
                e.version = table.data_version();
                e.derived = None;
            } else {
                map.remove(table.name());
            }
        }
    }

    /// Apply in-place row overwrites to the cached accumulator, mirroring
    /// [`StatsCache::absorb_append`]'s version discipline.
    fn absorb_update(&self, table: &Table, old_version: u64, changes: &[(Row, &Row)]) {
        let mut map = self.0.write().unwrap_or_else(|e| e.into_inner());
        if let Some(e) = map.get_mut(table.name()) {
            if e.version == old_version {
                telemetry::counter("db.stats.incremental", 1);
                for (old_row, new_row) in changes {
                    e.accum.apply_update(old_row, new_row);
                }
                e.version = table.data_version();
                e.derived = None;
            } else {
                map.remove(table.name());
            }
        }
    }

    fn clear(&self) {
        self.0.write().unwrap_or_else(|e| e.into_inner()).clear();
    }
}

impl Clone for StatsCache {
    fn clone(&self) -> Self {
        StatsCache::default()
    }
}

/// An in-memory database: named tables in deterministic (sorted) order.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Database {
    tables: BTreeMap<String, Table>,
    #[serde(skip)]
    count_cache: CountCache,
    #[serde(skip)]
    stats_cache: StatsCache,
    /// Query-plan cache, deliberately *shared* (`Arc`) across clones and
    /// [`Database::subset`] outputs: subsets keep their parent's schemas, so
    /// plans transfer — and the RL reward loop, which executes the same
    /// templated queries against many subsets, hits instead of replanning.
    /// Safety does not depend on this sharing: every hit is re-validated
    /// against the executing database's schema fingerprints (see
    /// [`crate::plan_cache`]).
    #[serde(skip)]
    plan_cache: Arc<PlanCache>,
}

impl Database {
    pub fn new() -> Self {
        Database::default()
    }

    /// Register a table; the table's own name is the catalog key.
    pub fn add_table(&mut self, table: Table) -> DbResult<()> {
        if self.tables.contains_key(table.name()) {
            return Err(DbError::Duplicate(table.name().to_string()));
        }
        self.count_cache.clear();
        self.stats_cache.clear();
        self.tables.insert(table.name().to_string(), table);
        Ok(())
    }

    /// Create an empty table with the given schema and register it.
    pub fn create_table(&mut self, name: &str, schema: Schema) -> DbResult<&mut Table> {
        self.add_table(Table::new(name, schema))?;
        Ok(self.tables.get_mut(name).expect("just inserted"))
    }

    pub fn table(&self, name: &str) -> DbResult<&Table> {
        self.tables
            .get(name)
            .ok_or_else(|| DbError::UnknownTable(name.to_string()))
    }

    pub fn table_mut(&mut self, name: &str) -> DbResult<&mut Table> {
        // Handing out mutable table access may change any cached count or
        // statistic. (The shared plan cache is *not* cleared: cached plans
        // hold decisions and estimates, never data, so a stale entry can
        // only cost plan quality — and schema changes are caught by the
        // per-hit fingerprint validation.)
        self.count_cache.clear();
        self.stats_cache.clear();
        self.tables
            .get_mut(name)
            .ok_or_else(|| DbError::UnknownTable(name.to_string()))
    }

    pub fn has_table(&self, name: &str) -> bool {
        self.tables.contains_key(name)
    }

    /// Append a batch of rows to `name` through the incremental maintenance
    /// path: the batch is validated atomically, the table's zone maps are
    /// extended rather than rebuilt, cached statistics absorb just the new
    /// rows, and the version-fingerprinted caches (cardinalities, plans)
    /// invalidate themselves lazily on next use — nothing is wholesale-
    /// cleared. Returns the number of rows appended.
    pub fn append_rows(&mut self, name: &str, rows: &[Row]) -> DbResult<usize> {
        let table = self
            .tables
            .get_mut(name)
            .ok_or_else(|| DbError::UnknownTable(name.to_string()))?;
        let old_rows = table.row_count();
        let old_version = table.data_version();
        let n = table.append_rows(rows)?;
        if n > 0 {
            let table = &self.tables[name];
            self.stats_cache.absorb_append(table, old_rows, old_version);
        }
        Ok(n)
    }

    /// Overwrite existing rows of `name` in place (row id → replacement
    /// row), with the same incremental cache maintenance as
    /// [`Database::append_rows`]. Returns the number of rows updated.
    pub fn update_rows(&mut self, name: &str, updates: &[(usize, Row)]) -> DbResult<usize> {
        let table = self
            .tables
            .get_mut(name)
            .ok_or_else(|| DbError::UnknownTable(name.to_string()))?;
        let old_version = table.data_version();
        // Pair each update with the value it actually overwrites: when one
        // batch touches the same row twice, the second overwrite retracts
        // the first one's row, not the pre-batch original.
        let mut overwritten: HashMap<usize, Row> = HashMap::new();
        let mut changes: Vec<(Row, &Row)> = Vec::with_capacity(updates.len());
        for (rid, new_row) in updates {
            if *rid >= table.row_count() {
                break; // update_rows below rejects the whole batch
            }
            let old = overwritten
                .get(rid)
                .cloned()
                .unwrap_or_else(|| table.row(*rid));
            changes.push((old, new_row));
            overwritten.insert(*rid, new_row.clone());
        }
        let n = table.update_rows(updates)?;
        if n > 0 {
            let table = &self.tables[name];
            self.stats_cache.absorb_update(table, old_version, &changes);
        }
        Ok(n)
    }

    /// FNV-1a fingerprint of every table's (name, data version) pair — a
    /// cheap summary of *what data the database holds*. Moves whenever any
    /// table's contents change; used by sessions to detect data drift.
    pub fn data_fingerprint(&self) -> u64 {
        fnv_fold(self.tables.values().map(|t| (t.name(), t.data_version())))
    }

    /// Data fingerprint restricted to a query's FROM tables (missing tables
    /// fold a sentinel). This is what keys the cardinality cache: an append
    /// to an unrelated table must not invalidate this query's count.
    fn query_data_fingerprint(&self, query: &Query) -> u64 {
        fnv_fold(query.from.iter().map(|tref| {
            (
                tref.table.as_str(),
                self.tables
                    .get(&tref.table)
                    .map(|t| t.data_version())
                    .unwrap_or(u64::MAX),
            )
        }))
    }

    /// Remove a table from the catalog, returning it.
    pub fn drop_table(&mut self, name: &str) -> DbResult<Table> {
        self.count_cache.clear();
        self.stats_cache.clear();
        self.tables
            .remove(name)
            .ok_or_else(|| DbError::UnknownTable(name.to_string()))
    }

    pub fn table_names(&self) -> impl Iterator<Item = &str> {
        self.tables.keys().map(|s| s.as_str())
    }

    pub fn tables(&self) -> impl Iterator<Item = &Table> {
        self.tables.values()
    }

    /// Total number of stored tuples across all tables.
    pub fn total_rows(&self) -> usize {
        self.tables.values().map(|t| t.row_count()).sum()
    }

    /// Execute a query AST.
    pub fn execute(&self, query: &Query) -> DbResult<ResultSet> {
        execute(self, query)
    }

    /// Execute and also report, per result row, which base-table rows
    /// produced it (the provenance ASQP-RL uses to build its action space).
    pub fn execute_with_lineage(&self, query: &Query) -> DbResult<QueryOutput> {
        execute_with_lineage(self, query)
    }

    /// Result cardinality `|q(D)|`, memoised across calls keyed by the
    /// query's canonical SQL. The Eq.-1 metric normalises every per-query
    /// fraction by this count, so scoring many candidate approximation sets
    /// against one workload re-uses each full-database execution. Entries
    /// are pinned to the FROM tables' data fingerprint: after an append or
    /// update the fingerprint moves and the count is recomputed.
    pub fn cached_row_count(&self, query: &Query) -> DbResult<usize> {
        let key = query.to_sql();
        let fingerprint = self.query_data_fingerprint(query);
        if let Some(n) = self.count_cache.get(&key, fingerprint) {
            return Ok(n);
        }
        let n = self.execute(query)?.rows.len();
        self.count_cache.put(key, fingerprint, n);
        Ok(n)
    }

    /// Parse and execute SQL text.
    pub fn sql(&self, text: &str) -> DbResult<ResultSet> {
        let q = sql::parse(text)?;
        self.execute(&q)
    }

    /// Statistics for one table, memoised until the table's data version
    /// moves. The optimizer's cost model calls this per query; without
    /// memoisation every `explain()`/plan recomputed an O(rows × columns)
    /// pass. After [`Database::append_rows`] / [`Database::update_rows`]
    /// the cached accumulator is already up to date and only the cheap
    /// O(distinct) derivation runs here.
    pub fn table_stats(&self, name: &str) -> DbResult<Arc<TableStats>> {
        Ok(self.stats_cache.get_or_compute(self.table(name)?))
    }

    /// The shared plan cache handle (see the field docs for the sharing
    /// contract).
    pub fn plan_cache(&self) -> &PlanCache {
        &self.plan_cache
    }

    /// Build a sub-database holding only the listed row ids per table.
    /// Tables absent from `selection` are created *empty* (schema kept), so
    /// every query valid on `self` remains valid on the subset — this is the
    /// approximation-set materialisation used throughout ASQP-RL.
    pub fn subset(&self, selection: &BTreeMap<String, Vec<usize>>) -> DbResult<Database> {
        let mut out = Database::new();
        for (name, table) in &self.tables {
            let sub = match selection.get(name) {
                Some(ids) => table.subset(ids)?,
                None => table.empty_like(),
            };
            out.add_table(sub)?;
        }
        // Attach the shared plan cache *after* the build loop: the subset
        // has identical schemas, so the parent's plans apply verbatim, and
        // attaching last keeps `add_table`'s cache-clearing away from the
        // shared handle.
        out.plan_cache = Arc::clone(&self.plan_cache);
        Ok(out)
    }
}

/// FNV-1a fold over (name, version) pairs, shared by the whole-database and
/// per-query data fingerprints. Same constants as
/// [`crate::plan_cache::schema_fingerprint`].
fn fnv_fold<'a>(pairs: impl Iterator<Item = (&'a str, u64)>) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(PRIME);
        }
    };
    for (name, version) in pairs {
        eat(name.as_bytes());
        eat(&[0xff]);
        eat(&version.to_le_bytes());
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::{Value, ValueType};

    fn db() -> Database {
        let mut db = Database::new();
        let t = db
            .create_table("t", Schema::build(&[("id", ValueType::Int)]))
            .unwrap();
        for i in 0..5 {
            t.push_row(&[Value::Int(i)]).unwrap();
        }
        db
    }

    #[test]
    fn add_and_lookup() {
        let db = db();
        assert!(db.has_table("t"));
        assert!(db.table("missing").is_err());
        assert_eq!(db.total_rows(), 5);
    }

    #[test]
    fn duplicate_table_rejected() {
        let mut db = db();
        assert!(matches!(
            db.create_table("t", Schema::build(&[("x", ValueType::Int)])),
            Err(DbError::Duplicate(_))
        ));
    }

    #[test]
    fn table_stats_computed_once_per_table() {
        use asqp_telemetry as telemetry;
        use std::sync::Arc as StdArc;

        let mut db = db();
        let u = db
            .create_table("u", Schema::build(&[("y", ValueType::Int)]))
            .unwrap();
        u.push_row(&[Value::Int(7)]).unwrap();

        let rec = StdArc::new(telemetry::MemoryRecorder::new());
        telemetry::scoped(rec.clone(), || {
            for _ in 0..5 {
                db.table_stats("t").unwrap();
                db.table_stats("u").unwrap();
            }
        });
        assert_eq!(
            rec.report().counters["db.stats.computes"],
            2,
            "one compute per table, every later call served from the cache"
        );

        // Mutation invalidates; the next call recomputes exactly once.
        db.table_mut("t")
            .unwrap()
            .push_row(&[Value::Int(99)])
            .unwrap();
        let rec2 = StdArc::new(telemetry::MemoryRecorder::new());
        telemetry::scoped(rec2.clone(), || {
            db.table_stats("t").unwrap();
            db.table_stats("t").unwrap();
        });
        assert_eq!(rec2.report().counters["db.stats.computes"], 1);
        assert_eq!(db.table_stats("t").unwrap().row_count, 6);
    }

    #[test]
    fn cardinality_cache_rejects_stale_counts() {
        use crate::sql::parse;
        use asqp_telemetry as telemetry;
        use std::sync::Arc as StdArc;

        let mut db = db();
        let q = parse("SELECT t.id FROM t AS t WHERE t.id >= 0").unwrap();
        assert_eq!(db.cached_row_count(&q).unwrap(), 5);

        let rec = StdArc::new(telemetry::MemoryRecorder::new());
        telemetry::scoped(rec.clone(), || {
            assert_eq!(db.cached_row_count(&q).unwrap(), 5, "served from cache");
        });
        assert_eq!(rec.report().counters["db.count_cache.hit"], 1);

        // Append through the incremental path: no wholesale clear happens,
        // yet the fingerprint mismatch forces a recount.
        db.append_rows("t", &[vec![Value::Int(5)], vec![Value::Int(6)]])
            .unwrap();
        let rec2 = StdArc::new(telemetry::MemoryRecorder::new());
        telemetry::scoped(rec2.clone(), || {
            assert_eq!(db.cached_row_count(&q).unwrap(), 7, "stale count rejected");
        });
        assert_eq!(rec2.report().counters["db.count_cache.stale"], 1);
        assert!(!rec2.report().counters.contains_key("db.count_cache.hit"));
    }

    #[test]
    fn append_rows_absorbs_into_cached_stats() {
        use asqp_telemetry as telemetry;
        use std::sync::Arc as StdArc;

        let mut db = db();
        db.table_stats("t").unwrap(); // warm the accumulator

        let rec = StdArc::new(telemetry::MemoryRecorder::new());
        telemetry::scoped(rec.clone(), || {
            db.append_rows("t", &[vec![Value::Int(100)]]).unwrap();
            let s = db.table_stats("t").unwrap();
            assert_eq!(s.row_count, 6);
            assert_eq!(s.columns[0].max, Some(Value::Int(100)));
        });
        let counters = &rec.report().counters;
        assert_eq!(counters["db.stats.incremental"], 1);
        assert!(
            !counters.contains_key("db.stats.computes"),
            "append must not trigger a full stats recompute"
        );

        // The maintained stats equal a from-scratch compute byte for byte.
        let fresh = TableStats::compute(db.table("t").unwrap());
        assert_eq!(*db.table_stats("t").unwrap(), fresh);
    }

    #[test]
    fn update_rows_maintains_stats_and_counts() {
        let mut db = db();
        db.table_stats("t").unwrap();
        db.update_rows("t", &[(0, vec![Value::Int(-50)])]).unwrap();
        let s = db.table_stats("t").unwrap();
        assert_eq!(s.row_count, 5);
        assert_eq!(s.columns[0].min, Some(Value::Int(-50)));
        assert_eq!(*s, TableStats::compute(db.table("t").unwrap()));
        assert!(db.update_rows("t", &[(99, vec![Value::Null])]).is_err());
        assert!(db.update_rows("missing", &[]).is_err());
    }

    #[test]
    fn data_fingerprint_moves_with_data() {
        let mut db = db();
        let fp0 = db.data_fingerprint();
        db.append_rows("t", &[vec![Value::Int(9)]]).unwrap();
        let fp1 = db.data_fingerprint();
        assert_ne!(fp0, fp1);
        // Subsets snapshot the parent's versions, so their fingerprint
        // matches the parent's at materialisation time.
        let sub = db.subset(&BTreeMap::new()).unwrap();
        assert_eq!(sub.data_fingerprint(), fp1);
    }

    #[test]
    fn subset_shares_parent_plan_cache() {
        let db = db();
        let sub = db.subset(&BTreeMap::new()).unwrap();
        assert!(std::ptr::eq(db.plan_cache(), sub.plan_cache()));
        // A plain clone also shares; deserialisation would start fresh.
        assert!(std::ptr::eq(db.plan_cache(), db.clone().plan_cache()));
    }

    #[test]
    fn subset_keeps_missing_tables_empty() {
        let db = db();
        let mut sel = BTreeMap::new();
        sel.insert("t".to_string(), vec![1usize, 3]);
        let sub = db.subset(&sel).unwrap();
        assert_eq!(sub.table("t").unwrap().row_count(), 2);

        let empty = db.subset(&BTreeMap::new()).unwrap();
        assert_eq!(empty.table("t").unwrap().row_count(), 0);
        assert_eq!(empty.table("t").unwrap().schema().len(), 1);
    }
}
