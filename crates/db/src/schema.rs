//! Table schemas: named, typed, nullable columns.

use crate::error::{DbError, DbResult};
use crate::value::{Value, ValueType};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One column definition.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ColumnDef {
    pub name: String,
    pub ty: ValueType,
    pub nullable: bool,
}

impl ColumnDef {
    pub fn new(name: impl Into<String>, ty: ValueType) -> Self {
        ColumnDef {
            name: name.into(),
            ty,
            nullable: true,
        }
    }

    pub fn not_null(mut self) -> Self {
        self.nullable = false;
        self
    }

    /// Does `v` conform to this column's type and nullability?
    pub fn admits(&self, v: &Value) -> bool {
        match v {
            Value::Null => self.nullable,
            other => {
                let vt = other.value_type().expect("non-null value has a type");
                // Ints are accepted into FLOAT columns (widening).
                vt == self.ty || (vt == ValueType::Int && self.ty == ValueType::Float)
            }
        }
    }
}

/// An ordered list of column definitions belonging to one table.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schema {
    columns: Vec<ColumnDef>,
}

impl Schema {
    pub fn new(columns: Vec<ColumnDef>) -> DbResult<Self> {
        for (i, c) in columns.iter().enumerate() {
            if columns[..i].iter().any(|p| p.name == c.name) {
                return Err(DbError::Duplicate(c.name.clone()));
            }
        }
        Ok(Schema { columns })
    }

    /// Builder-style constructor used pervasively in tests and generators.
    pub fn build(cols: &[(&str, ValueType)]) -> Self {
        Schema {
            columns: cols.iter().map(|(n, t)| ColumnDef::new(*n, *t)).collect(),
        }
    }

    pub fn columns(&self) -> &[ColumnDef] {
        &self.columns
    }

    pub fn len(&self) -> usize {
        self.columns.len()
    }

    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    pub fn column(&self, idx: usize) -> &ColumnDef {
        &self.columns[idx]
    }

    pub fn require(&self, name: &str) -> DbResult<usize> {
        self.index_of(name)
            .ok_or_else(|| DbError::UnknownColumn(name.to_string()))
    }

    /// Validate a full row against the schema.
    pub fn check_row(&self, row: &[Value]) -> DbResult<()> {
        if row.len() != self.columns.len() {
            return Err(DbError::ShapeMismatch(format!(
                "row has {} values, schema has {} columns",
                row.len(),
                self.columns.len()
            )));
        }
        for (v, c) in row.iter().zip(&self.columns) {
            if !c.admits(v) {
                return Err(DbError::TypeMismatch {
                    expected: format!("{} ({})", c.ty, c.name),
                    found: v
                        .value_type()
                        .map(|t| t.to_string())
                        .unwrap_or_else(|| "NULL".to_string()),
                });
            }
        }
        Ok(())
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, c) in self.columns.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{} {}", c.name, c.ty)?;
            if !c.nullable {
                write!(f, " NOT NULL")?;
            }
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicate_column_rejected() {
        let cols = vec![
            ColumnDef::new("a", ValueType::Int),
            ColumnDef::new("a", ValueType::Str),
        ];
        assert!(matches!(Schema::new(cols), Err(DbError::Duplicate(_))));
    }

    #[test]
    fn check_row_types() {
        let s = Schema::build(&[("id", ValueType::Int), ("name", ValueType::Str)]);
        assert!(s
            .check_row(&[Value::Int(1), Value::Str("x".into())])
            .is_ok());
        assert!(s
            .check_row(&[Value::Str("x".into()), Value::Int(1)])
            .is_err());
        assert!(s.check_row(&[Value::Int(1)]).is_err());
    }

    #[test]
    fn not_null_enforced() {
        let s = Schema::new(vec![ColumnDef::new("id", ValueType::Int).not_null()]).unwrap();
        assert!(s.check_row(&[Value::Null]).is_err());
        assert!(s.check_row(&[Value::Int(0)]).is_ok());
    }

    #[test]
    fn int_widens_to_float() {
        let s = Schema::build(&[("x", ValueType::Float)]);
        assert!(s.check_row(&[Value::Int(3)]).is_ok());
    }

    #[test]
    fn lookup() {
        let s = Schema::build(&[("a", ValueType::Int), ("b", ValueType::Bool)]);
        assert_eq!(s.index_of("b"), Some(1));
        assert_eq!(s.index_of("c"), None);
        assert!(s.require("c").is_err());
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn display_round() {
        let s = Schema::new(vec![ColumnDef::new("id", ValueType::Int).not_null()]).unwrap();
        assert_eq!(s.to_string(), "(id INT NOT NULL)");
    }
}
