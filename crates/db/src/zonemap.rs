//! Zone maps: exact per-chunk and whole-column min/max bounds for numeric
//! columns, used by the vectorized executor to skip morsels (and whole
//! tables) that cannot satisfy a range predicate.
//!
//! Bounds are kept *typed* — `i64` for integer columns, `f64` for float
//! columns — so pruning decisions use the same comparison semantics as
//! [`crate::value::Value::sql_cmp`] and never misprune from lossy
//! `i64 → f64` conversion. The maps are built lazily on first use, cached on
//! the table behind an `RwLock`, and invalidated whenever a row is appended;
//! cloning a table resets the cache (it is pure derived state).

use crate::column::ColumnData;
use crate::table::Table;
use std::sync::{Arc, RwLock};

/// Rows per execution morsel; zone-map chunks are aligned to this.
pub const MORSEL_ROWS: usize = 2048;

/// Exact min/max for one chunk of one numeric column.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ZoneBounds {
    Int { min: i64, max: i64 },
    Float { min: f64, max: f64 },
}

/// Summary of one chunk: bounds over non-null values (`None` when the chunk
/// is entirely NULL) plus a null-presence flag.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Zone {
    pub bounds: Option<ZoneBounds>,
    pub has_nulls: bool,
}

/// Zone maps for one numeric column.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnZones {
    /// One entry per [`MORSEL_ROWS`]-aligned chunk, in row order.
    pub chunks: Vec<Zone>,
    /// Bounds over the whole column (fold of `chunks`).
    pub whole: Zone,
}

/// Zone maps for every column of a table; `None` for non-numeric columns.
#[derive(Debug, PartialEq)]
pub struct TableZones {
    pub columns: Vec<Option<ColumnZones>>,
}

impl TableZones {
    pub fn build(table: &Table) -> TableZones {
        Self::build_with(table, None, &|_| false)
    }

    /// Zone maps for `table` after rows were appended, reusing `self`'s
    /// chunks for every chunk that was already *complete* at `old_rows`.
    /// Only the trailing partial chunk and the appended rows are rescanned,
    /// so the result is chunk-for-chunk identical to a full [`build`](Self::build).
    pub fn extended(&self, table: &Table, old_rows: usize) -> TableZones {
        let complete = old_rows / MORSEL_ROWS;
        Self::build_with(table, Some(self), &|chunk| chunk < complete)
    }

    /// Zone maps for `table` after in-place row updates, recomputing only
    /// the chunks listed (sorted) in `dirty` and reusing the rest of
    /// `self`'s chunks. Row count must be unchanged.
    pub fn refreshed(&self, table: &Table, dirty: &[usize]) -> TableZones {
        Self::build_with(table, Some(self), &|chunk| {
            dirty.binary_search(&chunk).is_err()
        })
    }

    /// Shared builder: per chunk, either reuse the prior map's entry (when
    /// `reusable(chunk)` holds and the prior has one) or rescan the rows.
    /// Exactness is preserved because every reused chunk covers rows that
    /// did not change.
    fn build_with(
        table: &Table,
        prior: Option<&TableZones>,
        reusable: &dyn Fn(usize) -> bool,
    ) -> TableZones {
        let n = table.row_count();
        let columns = (0..table.schema().len())
            .map(|ci| {
                let col = table.column(ci);
                let prior_col = prior
                    .and_then(|z| z.columns.get(ci))
                    .and_then(|c| c.as_ref());
                match col.data() {
                    ColumnData::Int(d) => Some(build_zones(
                        d,
                        col.validity(),
                        n,
                        prior_col,
                        reusable,
                        int_bounds,
                    )),
                    ColumnData::Float(d) => Some(build_zones(
                        d,
                        col.validity(),
                        n,
                        prior_col,
                        reusable,
                        float_bounds,
                    )),
                    _ => None,
                }
            })
            .collect();
        TableZones { columns }
    }
}

fn int_bounds(vals: &[i64]) -> ZoneBounds {
    ZoneBounds::Int {
        min: *vals.iter().min().unwrap_or(&0),
        max: *vals.iter().max().unwrap_or(&0),
    }
}

fn float_bounds(vals: &[f64]) -> ZoneBounds {
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    for &v in vals {
        // NaN widens the zone to "anything" so pruning
        // stays conservative for NaN-laden chunks.
        if v.is_nan() {
            return ZoneBounds::Float {
                min: f64::NEG_INFINITY,
                max: f64::INFINITY,
            };
        }
        min = min.min(v);
        max = max.max(v);
    }
    ZoneBounds::Float { min, max }
}

fn build_zones<T: Copy>(
    data: &[T],
    validity: &[bool],
    n: usize,
    prior: Option<&ColumnZones>,
    reusable: &dyn Fn(usize) -> bool,
    bounds_of: impl Fn(&[T]) -> ZoneBounds,
) -> ColumnZones {
    let mut chunks = Vec::with_capacity(n.div_ceil(MORSEL_ROWS).max(1));
    let mut start = 0;
    let mut scratch: Vec<T> = Vec::with_capacity(MORSEL_ROWS);
    while start < n {
        let end = (start + MORSEL_ROWS).min(n);
        let chunk = start / MORSEL_ROWS;
        if let Some(p) = prior {
            if reusable(chunk) {
                if let Some(z) = p.chunks.get(chunk) {
                    chunks.push(*z);
                    start = end;
                    continue;
                }
            }
        }
        scratch.clear();
        let mut has_nulls = false;
        for i in start..end {
            if validity[i] {
                scratch.push(data[i]);
            } else {
                has_nulls = true;
            }
        }
        let bounds = if scratch.is_empty() {
            None
        } else {
            Some(bounds_of(&scratch))
        };
        chunks.push(Zone { bounds, has_nulls });
        start = end;
    }
    let whole = chunks.iter().fold(
        Zone {
            bounds: None,
            has_nulls: false,
        },
        |acc, z| Zone {
            bounds: merge_bounds(acc.bounds, z.bounds),
            has_nulls: acc.has_nulls || z.has_nulls,
        },
    );
    ColumnZones { chunks, whole }
}

fn merge_bounds(a: Option<ZoneBounds>, b: Option<ZoneBounds>) -> Option<ZoneBounds> {
    match (a, b) {
        (None, x) | (x, None) => x,
        (
            Some(ZoneBounds::Int { min: a0, max: a1 }),
            Some(ZoneBounds::Int { min: b0, max: b1 }),
        ) => Some(ZoneBounds::Int {
            min: a0.min(b0),
            max: a1.max(b1),
        }),
        (
            Some(ZoneBounds::Float { min: a0, max: a1 }),
            Some(ZoneBounds::Float { min: b0, max: b1 }),
        ) => Some(ZoneBounds::Float {
            min: a0.min(b0),
            max: a1.max(b1),
        }),
        // Mixed bounds cannot occur within one column; widen to "anything".
        _ => Some(ZoneBounds::Float {
            min: f64::NEG_INFINITY,
            max: f64::INFINITY,
        }),
    }
}

/// Lazily built zone-map cache carried by [`Table`]. Derived state only:
/// serialisation skips it and cloning resets it.
#[derive(Default)]
pub struct ZoneCache(RwLock<Option<Arc<TableZones>>>);

impl ZoneCache {
    pub fn get_or_build(&self, build: impl FnOnce() -> TableZones) -> Arc<TableZones> {
        if let Some(z) = self.0.read().unwrap_or_else(|e| e.into_inner()).as_ref() {
            return Arc::clone(z);
        }
        let mut slot = self.0.write().unwrap_or_else(|e| e.into_inner());
        // Double-checked: another thread may have built it in between.
        if let Some(z) = slot.as_ref() {
            return Arc::clone(z);
        }
        let z = Arc::new(build());
        *slot = Some(Arc::clone(&z));
        z
    }

    pub fn invalidate(&self) {
        *self.0.write().unwrap_or_else(|e| e.into_inner()) = None;
    }

    /// Remove and return the built maps, if any. The incremental mutation
    /// path takes the old maps out before mutating the table, then derives
    /// the successor maps from them with [`TableZones::extended`] /
    /// [`TableZones::refreshed`] and stores the result via [`ZoneCache::set`].
    pub fn take_built(&self) -> Option<Arc<TableZones>> {
        self.0.write().unwrap_or_else(|e| e.into_inner()).take()
    }

    /// Install pre-built maps (must describe the table's current contents).
    pub fn set(&self, zones: Arc<TableZones>) {
        *self.0.write().unwrap_or_else(|e| e.into_inner()) = Some(zones);
    }
}

impl Clone for ZoneCache {
    fn clone(&self) -> Self {
        ZoneCache::default()
    }
}

impl std::fmt::Debug for ZoneCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let built = self.0.read().unwrap_or_else(|e| e.into_inner()).is_some();
        write!(f, "ZoneCache {{ built: {built} }}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::value::{Value, ValueType};

    fn table_with_ints(vals: &[Option<i64>]) -> Table {
        let mut t = Table::new("t", Schema::build(&[("x", ValueType::Int)]));
        for v in vals {
            let row = [v.map(Value::Int).unwrap_or(Value::Null)];
            t.push_row(&row).unwrap();
        }
        t
    }

    #[test]
    fn int_bounds_are_exact() {
        let t = table_with_ints(&[Some(5), Some(-3), None, Some(9)]);
        let z = TableZones::build(&t);
        let cz = z.columns[0].as_ref().unwrap();
        assert_eq!(cz.chunks.len(), 1);
        assert_eq!(cz.whole.bounds, Some(ZoneBounds::Int { min: -3, max: 9 }));
        assert!(cz.whole.has_nulls);
    }

    #[test]
    fn all_null_chunk_has_no_bounds() {
        let t = table_with_ints(&[None, None]);
        let z = TableZones::build(&t);
        let cz = z.columns[0].as_ref().unwrap();
        assert!(cz.whole.bounds.is_none());
        assert!(cz.whole.has_nulls);
    }

    #[test]
    fn chunks_align_to_morsels() {
        let vals: Vec<Option<i64>> = (0..(MORSEL_ROWS as i64 * 2 + 10)).map(Some).collect();
        let t = table_with_ints(&vals);
        let z = TableZones::build(&t);
        let cz = z.columns[0].as_ref().unwrap();
        assert_eq!(cz.chunks.len(), 3);
        assert_eq!(
            cz.chunks[0].bounds,
            Some(ZoneBounds::Int {
                min: 0,
                max: MORSEL_ROWS as i64 - 1
            })
        );
        assert_eq!(
            cz.chunks[2].bounds,
            Some(ZoneBounds::Int {
                min: MORSEL_ROWS as i64 * 2,
                max: MORSEL_ROWS as i64 * 2 + 9
            })
        );
    }

    #[test]
    fn string_columns_have_no_zones() {
        let mut t = Table::new("s", Schema::build(&[("n", ValueType::Str)]));
        t.push_row(&[Value::Str("a".into())]).unwrap();
        let z = TableZones::build(&t);
        assert!(z.columns[0].is_none());
    }

    #[test]
    fn extended_matches_full_rebuild() {
        let vals: Vec<Option<i64>> = (0..(MORSEL_ROWS as i64 + 100)).map(Some).collect();
        let mut t = table_with_ints(&vals);
        let old = TableZones::build(&t);
        let old_rows = t.row_count();
        for i in 0..(MORSEL_ROWS as i64) {
            t.push_row(&[Value::Int(-i)]).unwrap();
        }
        let inc = old.extended(&t, old_rows);
        let full = TableZones::build(&t);
        assert_eq!(inc, full, "incremental extension must equal a rebuild");
    }

    #[test]
    fn refreshed_matches_full_rebuild() {
        let mut vals: Vec<Option<i64>> = (0..(MORSEL_ROWS as i64 * 3)).map(Some).collect();
        let t = table_with_ints(&vals);
        let old = TableZones::build(&t);
        // Shrink the min of chunk 1: a refresh must not keep the old bound.
        vals[MORSEL_ROWS + 5] = Some(-777);
        let t = table_with_ints(&vals);
        let inc = old.refreshed(&t, &[1]);
        let full = TableZones::build(&t);
        assert_eq!(inc, full);
        let cz = inc.columns[0].as_ref().unwrap();
        assert_eq!(
            cz.chunks[1].bounds,
            Some(ZoneBounds::Int {
                min: -777,
                max: MORSEL_ROWS as i64 * 2 - 1
            })
        );
    }

    #[test]
    fn cache_invalidates_on_push_and_resets_on_clone() {
        let mut t = table_with_ints(&[Some(1)]);
        let z1 = t.zone_maps();
        assert_eq!(
            z1.columns[0].as_ref().unwrap().whole.bounds,
            Some(ZoneBounds::Int { min: 1, max: 1 })
        );
        t.push_row(&[Value::Int(100)]).unwrap();
        let z2 = t.zone_maps();
        assert_eq!(
            z2.columns[0].as_ref().unwrap().whole.bounds,
            Some(ZoneBounds::Int { min: 1, max: 100 })
        );
        let c = t.clone();
        let z3 = c.zone_maps();
        assert_eq!(
            z3.columns[0].as_ref().unwrap().whole.bounds,
            z2.columns[0].as_ref().unwrap().whole.bounds
        );
    }
}
