//! `EXPLAIN`-style plan description: shows the pushed-down filters, the
//! greedy join order the executor will use, residual predicates and the
//! final operators — without executing anything beyond the filtered scans'
//! cardinality estimation.

use crate::catalog::Database;
use crate::error::DbResult;
use crate::query::Query;
use crate::stats::TableStats;
use std::fmt::Write as _;

/// Render a human-readable plan for `query` against `db`.
///
/// The join order shown matches the executor's greedy smallest-scan-first
/// strategy, using statistics-estimated (not executed) scan cardinalities.
pub fn explain(db: &Database, query: &Query) -> DbResult<String> {
    let mut out = String::new();
    let _ = writeln!(out, "QUERY: {}", query.to_sql());

    // Per-binding estimated scan sizes (selectivity from histograms where a
    // single-table numeric range is recognisable; row count otherwise).
    let mut scans: Vec<(String, String, usize)> = Vec::new(); // (binding, table, est rows)
    for tref in &query.from {
        let table = db.table(&tref.table)?;
        let stats = TableStats::compute(table);
        let est = estimate_scan(query, tref.binding(), &stats);
        scans.push((tref.binding().to_string(), tref.table.clone(), est));
    }

    let _ = writeln!(out, "SCANS:");
    for (binding, table, est) in &scans {
        let pushed: Vec<String> = query
            .predicate
            .iter()
            .flat_map(|p| p.clone().split_conjuncts())
            .filter(|c| {
                let mut cols = Vec::new();
                c.collect_columns(&mut cols);
                !cols.is_empty() && cols.iter().all(|c| c.table.as_deref() == Some(binding))
            })
            .map(|c| c.to_string())
            .collect();
        let _ = writeln!(
            out,
            "  {binding} ({table}): ~{est} rows{}",
            if pushed.is_empty() {
                String::new()
            } else {
                format!("  [pushed: {}]", pushed.join(" AND "))
            }
        );
    }

    // Greedy join order: smallest estimated scan first, then smallest
    // connected (mirrors exec.rs).
    if scans.len() > 1 {
        let n = scans.len();
        let mut joined = vec![false; n];
        let idx_of = |b: &str| scans.iter().position(|(x, _, _)| x == b);
        let connected = |b: usize, joined: &[bool]| {
            query.joins.iter().any(|j| {
                let l = j.left.table.as_deref().and_then(idx_of);
                let r = j.right.table.as_deref().and_then(idx_of);
                matches!((l, r), (Some(l), Some(r))
                    if (l == b && joined[r]) || (r == b && joined[l]))
            })
        };
        let start = (0..n).min_by_key(|&i| scans[i].2).unwrap_or(0);
        joined[start] = true;
        let mut order = vec![start];
        for _ in 1..n {
            let next = (0..n)
                .filter(|&b| !joined[b] && connected(b, &joined))
                .min_by_key(|&b| scans[b].2)
                .or_else(|| (0..n).filter(|&b| !joined[b]).min_by_key(|&b| scans[b].2));
            let Some(next) = next else { break };
            joined[next] = true;
            order.push(next);
        }
        let _ = writeln!(out, "JOIN ORDER (hash joins, greedy smallest-first):");
        let mut described = String::new();
        for (i, &b) in order.iter().enumerate() {
            if i == 0 {
                described = scans[b].0.clone();
            } else {
                let conds: Vec<String> = query
                    .joins
                    .iter()
                    .filter(|j| {
                        j.left.table.as_deref() == Some(&scans[b].0)
                            || j.right.table.as_deref() == Some(&scans[b].0)
                    })
                    .map(|j| j.to_string())
                    .collect();
                let _ = writeln!(
                    out,
                    "  {described} ⋈ {} {}",
                    scans[b].0,
                    if conds.is_empty() {
                        "(cartesian)".to_string()
                    } else {
                        format!("ON {}", conds.join(" AND "))
                    }
                );
                described = format!("({described} ⋈ {})", scans[b].0);
            }
        }
    }

    if query.is_aggregate() {
        let _ = writeln!(
            out,
            "AGGREGATE: group by {:?}",
            query
                .group_by
                .iter()
                .map(|g| g.to_string())
                .collect::<Vec<_>>()
        );
    }
    if query.distinct {
        let _ = writeln!(out, "DISTINCT");
    }
    if !query.order_by.is_empty() {
        let _ = writeln!(out, "SORT: {} key(s)", query.order_by.len());
    }
    if let Some(l) = query.limit {
        let _ = writeln!(out, "LIMIT {l}");
    }
    Ok(out)
}

/// Estimate the filtered scan size of one binding from its statistics.
fn estimate_scan(query: &Query, binding: &str, stats: &TableStats) -> usize {
    let mut selectivity = 1.0f64;
    if let Some(pred) = &query.predicate {
        for conj in pred.clone().split_conjuncts() {
            let mut cols = Vec::new();
            conj.collect_columns(&mut cols);
            if cols.is_empty() || !cols.iter().all(|c| c.table.as_deref() == Some(binding)) {
                continue;
            }
            // Recognise BETWEEN lo AND hi / col CMP lit on numeric columns.
            use crate::expr::{CmpOp, Expr};
            let col_sel = match &conj {
                Expr::Between {
                    expr,
                    low,
                    high,
                    negated: false,
                } => match (expr.as_ref(), low.as_ref(), high.as_ref()) {
                    (Expr::Column(c), Expr::Literal(lo), Expr::Literal(hi)) => stats
                        .column(&c.column)
                        .zip(lo.as_f64().zip(hi.as_f64()))
                        .map(|(cs, (lo, hi))| cs.range_selectivity(lo, hi)),
                    _ => None,
                },
                Expr::Cmp { op, lhs, rhs } => match (lhs.as_ref(), rhs.as_ref()) {
                    (Expr::Column(c), Expr::Literal(v)) => stats.column(&c.column).and_then(|cs| {
                        let f = v.as_f64()?;
                        Some(match op {
                            CmpOp::Ge | CmpOp::Gt => cs.range_selectivity(f, f64::INFINITY),
                            CmpOp::Le | CmpOp::Lt => cs.range_selectivity(f64::NEG_INFINITY, f),
                            CmpOp::Eq => 1.0 / cs.distinct.max(1) as f64,
                            CmpOp::Ne => 1.0 - 1.0 / cs.distinct.max(1) as f64,
                        })
                    }),
                    _ => None,
                },
                _ => None,
            };
            selectivity *= col_sel.unwrap_or(0.5); // unknown shapes: ½ guess
        }
    }
    ((stats.row_count as f64) * selectivity).round().max(0.0) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sql::parse;
    use crate::{Schema, Value, ValueType};

    fn db() -> Database {
        let mut db = Database::new();
        let big = db
            .create_table(
                "big",
                Schema::build(&[("id", ValueType::Int), ("x", ValueType::Int)]),
            )
            .unwrap();
        for i in 0..1000 {
            big.push_row(&[Value::Int(i), Value::Int(i % 100)]).unwrap();
        }
        let small = db
            .create_table("small", Schema::build(&[("id", ValueType::Int)]))
            .unwrap();
        for i in 0..10 {
            small.push_row(&[Value::Int(i)]).unwrap();
        }
        db
    }

    #[test]
    fn explains_join_order_smallest_first() {
        let db = db();
        let q = parse("SELECT * FROM big b, small s WHERE b.id = s.id").unwrap();
        let plan = explain(&db, &q).unwrap();
        assert!(plan.contains("s (small): ~10 rows"), "{plan}");
        assert!(plan.contains("s ⋈ b"), "small side drives the join: {plan}");
    }

    #[test]
    fn selectivity_shown_for_pushed_filters() {
        let db = db();
        let q = parse("SELECT * FROM big b WHERE b.x BETWEEN 0 AND 9").unwrap();
        let plan = explain(&db, &q).unwrap();
        // ~10% of 1000 rows.
        let est: usize = plan
            .split("~")
            .nth(1)
            .and_then(|s| s.split(' ').next())
            .and_then(|s| s.parse().ok())
            .unwrap();
        assert!(
            (60..=160).contains(&est),
            "estimate {est} out of range\n{plan}"
        );
        assert!(plan.contains("[pushed:"), "{plan}");
    }

    #[test]
    fn aggregate_and_limit_sections() {
        let db = db();
        let q = parse("SELECT b.x, COUNT(*) FROM big b GROUP BY b.x ORDER BY b.x LIMIT 5").unwrap();
        let plan = explain(&db, &q).unwrap();
        assert!(plan.contains("AGGREGATE"));
        assert!(plan.contains("LIMIT 5"));
        assert!(plan.contains("SORT"));
    }
}
