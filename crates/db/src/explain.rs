//! Plan printer: renders the optimizer's logical tree with estimated (and,
//! for `EXPLAIN ANALYZE`, actual) cardinalities plus plan-cache status.
//!
//! [`explain`] plans without executing; [`explain_analyze`] executes the
//! query with the default executor configuration and aligns the observed
//! scan/join cardinalities with the optimizer's estimates from the
//! execution trace.

use crate::catalog::Database;
use crate::error::DbResult;
use crate::exec::{execute_with_options, ExecOptions, ExecTrace};
use crate::optimizer::{optimize, Optimized};
use crate::plan::LogicalPlan;
use crate::plan_cache::{cache_enabled_default, normalized_key};
use crate::query::Query;
use std::fmt::Write as _;

/// Render the optimized plan for `query` without executing it.
///
/// The header reports plan-cache temperature for this query shape: `warm`
/// (a later execution will reuse a cached plan), `cold` (it will plan and
/// populate the cache) or `off` (caching disabled via `ASQP_PLAN_CACHE`).
pub fn explain(db: &Database, query: &Query) -> DbResult<String> {
    let opt = optimize(db, query)?;
    let cache = if !cache_enabled_default() {
        "off"
    } else if db.plan_cache().peek(&normalized_key(query)) {
        // peek never refreshes the LRU tick: explaining a plan must not
        // change eviction behaviour.
        "warm"
    } else {
        "cold"
    };
    let mut out = String::new();
    let _ = writeln!(out, "QUERY: {}", query.to_sql());
    let _ = writeln!(out, "PLAN (cost-based, cache: {cache}):");
    render(&mut out, &opt, None);
    Ok(out)
}

/// Execute `query` (default executor configuration), then render the plan
/// annotated with actual cardinalities next to the estimates.
pub fn explain_analyze(db: &Database, query: &Query) -> DbResult<String> {
    let output = execute_with_options(db, query, ExecOptions::default())?;
    let opt = optimize(db, query)?;
    let mut out = String::new();
    let _ = writeln!(out, "QUERY: {}", query.to_sql());
    let _ = writeln!(
        out,
        "PLAN (cost-based, cache: {}):",
        output.trace.cache.as_str()
    );
    render(&mut out, &opt, Some(&output.trace));
    let _ = writeln!(out, "rows returned: {}", output.result.len());
    Ok(out)
}

fn render(out: &mut String, opt: &Optimized, trace: Option<&ExecTrace>) {
    // Join actuals only align with the rendered tree when the executed
    // order matches this optimization (a cached plan from the same template
    // normally agrees; a stale-but-valid one may not).
    let joins_aligned = trace.is_some_and(|t| t.join_order == opt.physical.join_order);
    render_node(out, &opt.root, opt, trace, joins_aligned, 1);
}

fn render_node(
    out: &mut String,
    node: &LogicalPlan,
    opt: &Optimized,
    trace: Option<&ExecTrace>,
    joins_aligned: bool,
    depth: usize,
) {
    let pad = "  ".repeat(depth);
    match node {
        LogicalPlan::Limit { input, n } => {
            let _ = writeln!(out, "{pad}Limit {n}");
            render_node(out, input, opt, trace, joins_aligned, depth + 1);
        }
        LogicalPlan::Distinct { input } => {
            let _ = writeln!(out, "{pad}Distinct");
            render_node(out, input, opt, trace, joins_aligned, depth + 1);
        }
        LogicalPlan::Project { input, items } => {
            let items: Vec<String> = items.iter().map(|i| i.to_string()).collect();
            let _ = writeln!(out, "{pad}Project [{}]", items.join(", "));
            render_node(out, input, opt, trace, joins_aligned, depth + 1);
        }
        LogicalPlan::Sort { input, keys } => {
            let keys: Vec<String> = keys
                .iter()
                .map(|k| format!("{}{}", k.column, if k.desc { " DESC" } else { "" }))
                .collect();
            let _ = writeln!(out, "{pad}Sort [{}]", keys.join(", "));
            render_node(out, input, opt, trace, joins_aligned, depth + 1);
        }
        LogicalPlan::Aggregate {
            input,
            group_by,
            aggregates,
        } => {
            let groups: Vec<String> = group_by.iter().map(|g| g.to_string()).collect();
            let aggs: Vec<String> = aggregates.iter().map(|a| a.to_string()).collect();
            let _ = writeln!(
                out,
                "{pad}Aggregate [{}] group by [{}]",
                aggs.join(", "),
                groups.join(", ")
            );
            render_node(out, input, opt, trace, joins_aligned, depth + 1);
        }
        LogicalPlan::Filter { input, predicate } => {
            let _ = writeln!(out, "{pad}Filter {predicate}  [residual]");
            render_node(out, input, opt, trace, joins_aligned, depth + 1);
        }
        LogicalPlan::Join {
            left,
            right,
            on,
            est_rows,
        } => {
            let cond = if on.is_empty() {
                "(cartesian)".to_string()
            } else {
                let conds: Vec<String> = on.iter().map(|j| j.to_string()).collect();
                format!("ON {}", conds.join(" AND "))
            };
            // This node is join step `left.join_count()` (0-based) in the
            // left-deep order.
            let step = left.join_count();
            let actual = trace
                .filter(|_| joins_aligned)
                .and_then(|t| t.join_rows.get(step));
            let _ = writeln!(
                out,
                "{pad}Join {cond}  ({})",
                card(est_rows.as_ref(), actual)
            );
            render_node(out, left, opt, trace, joins_aligned, depth + 1);
            render_node(out, right, opt, trace, joins_aligned, depth + 1);
        }
        LogicalPlan::Scan {
            binding,
            filters,
            columns,
            limit,
            est_rows,
        } => {
            let info = &opt.ctx.bindings[*binding];
            let name = if info.name == info.table {
                info.table.clone()
            } else {
                format!("{} AS {}", info.table, info.name)
            };
            let actual = trace.and_then(|t| t.scan_rows.get(*binding));
            let _ = write!(
                out,
                "{pad}Scan {name}  ({})",
                card(est_rows.as_ref(), actual)
            );
            if !filters.is_empty() {
                let fs: Vec<String> = filters.iter().map(|f| f.to_string()).collect();
                let _ = write!(out, "  [pushed: {}]", fs.join(" AND "));
            }
            if let Some(cols) = columns {
                let _ = write!(out, "  [cols: {}]", cols.join(", "));
            }
            if let Some(n) = limit {
                let _ = write!(out, "  [limit {n}]");
            }
            let _ = writeln!(out);
        }
    }
}

/// `est ~N rows` plus `, actual M` when an aligned execution trace exists.
fn card(est: Option<&f64>, actual: Option<&usize>) -> String {
    let mut s = match est {
        Some(e) => format!("est ~{} rows", e.round().max(0.0) as u64),
        None => "est ? rows".to_string(),
    };
    if let Some(a) = actual {
        let _ = write!(s, ", actual {a}");
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sql::parse;
    use crate::{Schema, Value, ValueType};

    fn db() -> Database {
        let mut db = Database::new();
        let big = db
            .create_table(
                "big",
                Schema::build(&[("id", ValueType::Int), ("x", ValueType::Int)]),
            )
            .unwrap();
        for i in 0..1000 {
            big.push_row(&[Value::Int(i), Value::Int(i % 100)]).unwrap();
        }
        let small = db
            .create_table("small", Schema::build(&[("id", ValueType::Int)]))
            .unwrap();
        for i in 0..10 {
            small.push_row(&[Value::Int(i)]).unwrap();
        }
        db
    }

    #[test]
    fn explains_join_order_smallest_first() {
        let db = db();
        let q = parse("SELECT * FROM big b, small s WHERE b.id = s.id").unwrap();
        let plan = explain(&db, &q).unwrap();
        // The driving (first-joined) scan is the deepest *left* leaf, so the
        // cheap side prints before the big side in the rendered tree.
        let small_at = plan.find("Scan small AS s").expect("small scan shown");
        let big_at = plan.find("Scan big AS b").expect("big scan shown");
        assert!(small_at < big_at, "small side drives the join:\n{plan}");
        assert!(plan.contains("Join ON b.id = s.id"), "{plan}");
    }

    #[test]
    fn selectivity_shown_for_pushed_filters() {
        let db = db();
        let q = parse("SELECT b.id FROM big b WHERE b.x BETWEEN 0 AND 9").unwrap();
        let plan = explain(&db, &q).unwrap();
        // ~10% of 1000 rows.
        let est: usize = plan
            .split('~')
            .nth(1)
            .and_then(|s| s.split(' ').next())
            .and_then(|s| s.parse().ok())
            .unwrap();
        assert!(
            (60..=160).contains(&est),
            "estimate {est} out of range\n{plan}"
        );
        assert!(plan.contains("[pushed:"), "{plan}");
        assert!(plan.contains("[cols: id, x]"), "pruned column set:\n{plan}");
    }

    #[test]
    fn aggregate_sort_and_limit_nodes() {
        let db = db();
        let q = parse("SELECT b.x, COUNT(*) FROM big b GROUP BY b.x ORDER BY b.x LIMIT 5").unwrap();
        let plan = explain(&db, &q).unwrap();
        assert!(plan.contains("Aggregate"), "{plan}");
        assert!(plan.contains("Limit 5"), "{plan}");
        assert!(plan.contains("Sort [b.x]"), "{plan}");
    }

    #[test]
    fn cache_status_reflects_prior_planning() {
        let db = db();
        let q = parse("SELECT b.id FROM big b WHERE b.x = 4").unwrap();
        if cache_enabled_default() {
            assert!(explain(&db, &q).unwrap().contains("cache: cold"));
            db.execute(&q).unwrap(); // populates the shared cache
            let plan = explain(&db, &q).unwrap();
            assert!(plan.contains("cache: warm"), "{plan}");
        } else {
            assert!(explain(&db, &q).unwrap().contains("cache: off"));
        }
    }

    #[test]
    fn analyze_reports_estimated_and_actual() {
        let db = db();
        let q = parse("SELECT b.id FROM big b, small s WHERE b.id = s.id AND b.x < 50").unwrap();
        let plan = explain_analyze(&db, &q).unwrap();
        assert!(plan.contains("actual"), "{plan}");
        assert!(plan.contains("rows returned:"), "{plan}");
        // Scan actuals are attached per binding: small is unfiltered.
        assert!(plan.contains("actual 10"), "{plan}");
    }

    #[test]
    fn limit_pushdown_annotated() {
        let db = db();
        let q = parse("SELECT b.id FROM big b WHERE b.x >= 0 LIMIT 3").unwrap();
        let plan = explain(&db, &q).unwrap();
        assert!(plan.contains("[limit 3]"), "scan-level limit:\n{plan}");
    }
}
