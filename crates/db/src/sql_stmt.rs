//! Statement-level SQL: DDL (`CREATE TABLE`, `DROP TABLE`) and DML
//! (`INSERT INTO ... VALUES`) on top of the query parser, so the engine is
//! usable as a small standalone database (e.g. from the `sql_repl` example).

use crate::catalog::Database;
use crate::error::{DbError, DbResult};
use crate::exec::ResultSet;
use crate::query::Query;
use crate::schema::{ColumnDef, Schema};
use crate::sql;
use crate::value::{Value, ValueType};

/// A parsed SQL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    Select(Query),
    CreateTable {
        name: String,
        schema: Schema,
    },
    DropTable {
        name: String,
    },
    Insert {
        table: String,
        rows: Vec<Vec<Value>>,
    },
}

/// Outcome of executing a statement.
#[derive(Debug, Clone, PartialEq)]
pub enum StatementResult {
    /// SELECT output.
    Rows(ResultSet),
    /// DDL/DML acknowledgement: rows affected (0 for DDL).
    Done { affected: usize },
}

/// Parse a statement. SELECTs delegate to [`sql::parse`].
pub fn parse_statement(text: &str) -> DbResult<Statement> {
    let trimmed = text.trim_start();
    let head: String = trimmed
        .chars()
        .take_while(|c| c.is_ascii_alphabetic())
        .collect::<String>()
        .to_ascii_uppercase();
    match head.as_str() {
        "SELECT" => Ok(Statement::Select(sql::parse(text)?)),
        "CREATE" => parse_create(trimmed),
        "DROP" => parse_drop(trimmed),
        "INSERT" => parse_insert(trimmed),
        other => Err(DbError::Parse {
            message: format!("unsupported statement '{other}'"),
            position: 0,
        }),
    }
}

/// Execute any statement against a database.
pub fn execute_statement(db: &mut Database, text: &str) -> DbResult<StatementResult> {
    match parse_statement(text)? {
        Statement::Select(q) => Ok(StatementResult::Rows(db.execute(&q)?)),
        Statement::CreateTable { name, schema } => {
            db.create_table(&name, schema)?;
            Ok(StatementResult::Done { affected: 0 })
        }
        Statement::DropTable { name } => {
            db.drop_table(&name)?;
            Ok(StatementResult::Done { affected: 0 })
        }
        Statement::Insert { table, rows } => {
            let t = db.table_mut(&table)?;
            for r in &rows {
                t.push_row(r)?;
            }
            Ok(StatementResult::Done {
                affected: rows.len(),
            })
        }
    }
}

// ---------------------------------------------------------------------------
// Tiny hand-rolled tokenizer for DDL/DML (the query lexer stays private to
// the query parser; these grammars are simple enough for direct scanning).
// ---------------------------------------------------------------------------

struct Scanner<'a> {
    rest: &'a str,
    consumed: usize,
}

impl<'a> Scanner<'a> {
    fn new(text: &'a str) -> Self {
        Scanner {
            rest: text,
            consumed: 0,
        }
    }

    fn error(&self, message: impl Into<String>) -> DbError {
        DbError::Parse {
            message: message.into(),
            position: self.consumed,
        }
    }

    fn skip_ws(&mut self) {
        let trimmed = self.rest.trim_start();
        self.consumed += self.rest.len() - trimmed.len();
        self.rest = trimmed;
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        self.skip_ws();
        if self.rest.len() >= kw.len()
            && self.rest[..kw.len()].eq_ignore_ascii_case(kw)
            && !self.rest[kw.len()..]
                .chars()
                .next()
                .is_some_and(|c| c.is_ascii_alphanumeric() || c == '_')
        {
            self.advance(kw.len());
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> DbResult<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.error(format!("expected {kw}")))
        }
    }

    fn eat_sym(&mut self, sym: char) -> bool {
        self.skip_ws();
        if self.rest.starts_with(sym) {
            self.advance(sym.len_utf8());
            true
        } else {
            false
        }
    }

    fn expect_sym(&mut self, sym: char) -> DbResult<()> {
        if self.eat_sym(sym) {
            Ok(())
        } else {
            Err(self.error(format!("expected '{sym}'")))
        }
    }

    fn ident(&mut self) -> DbResult<String> {
        self.skip_ws();
        let end = self
            .rest
            .char_indices()
            .find(|(_, c)| !(c.is_ascii_alphanumeric() || *c == '_'))
            .map(|(i, _)| i)
            .unwrap_or(self.rest.len());
        if end == 0 {
            return Err(self.error("expected identifier"));
        }
        let id = self.rest[..end].to_string();
        self.advance(end);
        Ok(id)
    }

    fn literal(&mut self) -> DbResult<Value> {
        self.skip_ws();
        if self.rest.starts_with('\'') {
            // String with '' escapes.
            let mut out = String::new();
            let mut chars = self.rest.char_indices().skip(1).peekable();
            while let Some((i, c)) = chars.next() {
                if c == '\'' {
                    if matches!(chars.peek(), Some((_, '\''))) {
                        out.push('\'');
                        chars.next();
                        continue;
                    }
                    self.advance(i + 1);
                    return Ok(Value::Str(out));
                }
                out.push(c);
            }
            return Err(self.error("unterminated string literal"));
        }
        if self.eat_kw("NULL") {
            return Ok(Value::Null);
        }
        if self.eat_kw("TRUE") {
            return Ok(Value::Bool(true));
        }
        if self.eat_kw("FALSE") {
            return Ok(Value::Bool(false));
        }
        // Number.
        let end = self
            .rest
            .char_indices()
            .find(|(_, c)| !(c.is_ascii_digit() || *c == '.' || *c == '-' || *c == '+'))
            .map(|(i, _)| i)
            .unwrap_or(self.rest.len());
        let text = &self.rest[..end];
        if text.is_empty() {
            return Err(self.error("expected literal"));
        }
        let v = if let Ok(i) = text.parse::<i64>() {
            Value::Int(i)
        } else if let Ok(f) = text.parse::<f64>() {
            Value::Float(f)
        } else {
            return Err(self.error(format!("bad literal '{text}'")));
        };
        self.advance(end);
        Ok(v)
    }

    fn advance(&mut self, n: usize) {
        self.consumed += n;
        self.rest = &self.rest[n..];
    }

    fn at_end(&mut self) -> bool {
        self.skip_ws();
        self.rest.is_empty() || self.rest == ";"
    }
}

fn parse_type(sc: &mut Scanner) -> DbResult<ValueType> {
    for (names, ty) in [
        (&["INT", "INTEGER", "BIGINT"][..], ValueType::Int),
        (&["FLOAT", "DOUBLE", "REAL"][..], ValueType::Float),
        (&["TEXT", "VARCHAR", "STRING"][..], ValueType::Str),
        (&["BOOL", "BOOLEAN"][..], ValueType::Bool),
    ] {
        for n in names {
            if sc.eat_kw(n) {
                // Optional (n) length suffix, ignored.
                if sc.eat_sym('(') {
                    let _ = sc.literal();
                    sc.expect_sym(')')?;
                }
                return Ok(ty);
            }
        }
    }
    Err(sc.error("expected a column type (INT/FLOAT/TEXT/BOOL)"))
}

fn parse_create(text: &str) -> DbResult<Statement> {
    let mut sc = Scanner::new(text);
    sc.expect_kw("CREATE")?;
    sc.expect_kw("TABLE")?;
    let name = sc.ident()?;
    sc.expect_sym('(')?;
    let mut cols = Vec::new();
    loop {
        let col = sc.ident()?;
        let ty = parse_type(&mut sc)?;
        let mut def = ColumnDef::new(col, ty);
        if sc.eat_kw("NOT") {
            sc.expect_kw("NULL")?;
            def = def.not_null();
        }
        cols.push(def);
        if !sc.eat_sym(',') {
            break;
        }
    }
    sc.expect_sym(')')?;
    if !sc.at_end() {
        return Err(sc.error("trailing input after CREATE TABLE"));
    }
    Ok(Statement::CreateTable {
        name,
        schema: Schema::new(cols)?,
    })
}

fn parse_drop(text: &str) -> DbResult<Statement> {
    let mut sc = Scanner::new(text);
    sc.expect_kw("DROP")?;
    sc.expect_kw("TABLE")?;
    let name = sc.ident()?;
    if !sc.at_end() {
        return Err(sc.error("trailing input after DROP TABLE"));
    }
    Ok(Statement::DropTable { name })
}

fn parse_insert(text: &str) -> DbResult<Statement> {
    let mut sc = Scanner::new(text);
    sc.expect_kw("INSERT")?;
    sc.expect_kw("INTO")?;
    let table = sc.ident()?;
    sc.expect_kw("VALUES")?;
    let mut rows = Vec::new();
    loop {
        sc.expect_sym('(')?;
        let mut row = Vec::new();
        loop {
            row.push(sc.literal()?);
            if !sc.eat_sym(',') {
                break;
            }
        }
        sc.expect_sym(')')?;
        rows.push(row);
        if !sc.eat_sym(',') {
            break;
        }
    }
    if !sc.at_end() {
        return Err(sc.error("trailing input after VALUES"));
    }
    Ok(Statement::Insert { table, rows })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exec(db: &mut Database, text: &str) -> StatementResult {
        execute_statement(db, text).unwrap()
    }

    #[test]
    fn create_insert_select_drop() {
        let mut db = Database::new();
        exec(
            &mut db,
            "CREATE TABLE movies (id INT NOT NULL, title TEXT, rating FLOAT, seen BOOL)",
        );
        let r = exec(
            &mut db,
            "INSERT INTO movies VALUES (1, 'Alien', 8.5, true), (2, 'It''s a gift', 7.0, false)",
        );
        assert_eq!(r, StatementResult::Done { affected: 2 });

        let StatementResult::Rows(rs) = exec(
            &mut db,
            "SELECT movies.title FROM movies WHERE movies.rating > 8",
        ) else {
            panic!("expected rows")
        };
        assert_eq!(rs.rows, vec![vec![Value::Str("Alien".into())]]);

        exec(&mut db, "DROP TABLE movies");
        assert!(!db.has_table("movies"));
    }

    #[test]
    fn insert_type_checked() {
        let mut db = Database::new();
        exec(&mut db, "CREATE TABLE t (x INT NOT NULL)");
        assert!(execute_statement(&mut db, "INSERT INTO t VALUES ('nope')").is_err());
        assert!(execute_statement(&mut db, "INSERT INTO t VALUES (NULL)").is_err());
        assert!(execute_statement(&mut db, "INSERT INTO t VALUES (-5)").is_ok());
    }

    #[test]
    fn varchar_len_and_keywords_case() {
        let mut db = Database::new();
        exec(&mut db, "create table u (name varchar(64), age integer)");
        exec(&mut db, "insert into u values ('ann', 30)");
        let StatementResult::Rows(rs) = exec(&mut db, "SELECT * FROM u") else {
            panic!()
        };
        assert_eq!(rs.rows.len(), 1);
    }

    #[test]
    fn parse_errors() {
        assert!(parse_statement("CREATE TABLE ()").is_err());
        assert!(parse_statement("INSERT INTO t (1)").is_err());
        assert!(parse_statement("UPDATE t SET x = 1").is_err());
        assert!(parse_statement("CREATE TABLE t (x BLOB)").is_err());
        assert!(parse_statement("DROP TABLE t extra").is_err());
    }

    #[test]
    fn drop_missing_table_errors() {
        let mut db = Database::new();
        assert!(execute_statement(&mut db, "DROP TABLE ghost").is_err());
    }

    #[test]
    fn negative_and_float_literals() {
        let mut db = Database::new();
        exec(&mut db, "CREATE TABLE n (a INT, b FLOAT)");
        exec(&mut db, "INSERT INTO n VALUES (-3, -2.5)");
        let StatementResult::Rows(rs) = exec(&mut db, "SELECT * FROM n") else {
            panic!()
        };
        assert_eq!(rs.rows[0], vec![Value::Int(-3), Value::Float(-2.5)]);
    }
}
