//! LRU plan cache keyed by *normalized* query text.
//!
//! The RL inner loop re-executes templated queries — the same shape with
//! different literals, against many approximation-set subsets — thousands of
//! times per training run (paper §3, Eq. 1 reward evaluation). Plans for
//! those queries are identical modulo literals, so the cache key is the
//! canonical SQL with every literal replaced by a placeholder and LIMIT
//! normalised out ([`normalized_key`]).
//!
//! A [`CachedPlan`] stores only the optimizer's *decisions* (join order,
//! whether LIMIT may be pushed into the scan, cardinality estimates), never
//! rewritten expression trees — the executor re-derives conjunct
//! classification from the incoming query, so a hit with different literals
//! is always correct. Hits are additionally validated against per-binding
//! schema fingerprints ([`schema_fingerprint`]), which is what makes the
//! cache safe to share across [`Database`](crate::catalog::Database) clones
//! and subsets: an approximation-set subset has the same schemas as its
//! parent, so the parent's plans transfer.
//!
//! Eviction is deterministic: a `BTreeMap` keyed store with a monotonic
//! access tick, evicting the least-recently-used entry (lowest tick, first
//! key on ties). No wall clock, no hash-order iteration — plan choice stays
//! byte-reproducible across runs.

use crate::expr::Expr;
use crate::query::Query;
use crate::schema::Schema;
use crate::value::Value;
use std::collections::BTreeMap;
use std::sync::{Mutex, OnceLock};

/// Default number of cached plans; RL workloads hold a few dozen templates.
pub const DEFAULT_CAPACITY: usize = 256;

/// Is the plan cache enabled by default for this process? Controlled by the
/// `ASQP_PLAN_CACHE` environment variable: `0` / `false` / `off` disable it,
/// anything else (including unset) enables it. Read once per process.
pub fn cache_enabled_default() -> bool {
    static FLAG: OnceLock<bool> = OnceLock::new();
    *FLAG.get_or_init(|| {
        !matches!(
            std::env::var("ASQP_PLAN_CACHE").as_deref(),
            Ok("0") | Ok("false") | Ok("off")
        )
    })
}

/// Optimizer decisions memoised for one normalized query shape.
#[derive(Debug, Clone, PartialEq)]
pub struct CachedPlan {
    /// Binding indices (into `Query::from`) in execution order.
    pub join_order: Vec<usize>,
    /// Shape-only flag: the operator chain between LIMIT and the single scan
    /// is order- and cardinality-preserving, so any incoming LIMIT may stop
    /// the scan early. The limit *value* is never cached (it is normalised
    /// out of the key); the executor instantiates it from the live query.
    pub limit_pushdown: bool,
    /// Estimated filtered-scan rows per binding (for EXPLAIN display).
    pub est_scan_rows: Vec<f64>,
    /// Estimated intermediate size after each join step (len = bindings-1).
    pub est_join_rows: Vec<f64>,
    /// Per FROM binding: (catalog table name, schema fingerprint, data
    /// version). A hit is honoured only when all three still match the
    /// executing database — the data version catches appends/updates whose
    /// shifted statistics would otherwise leave a stale join order in
    /// place, and lets subsets (which snapshot their parent's versions)
    /// keep sharing the parent's plans.
    pub tables: Vec<(String, u64, u64)>,
}

#[derive(Debug)]
struct Entry {
    plan: CachedPlan,
    last_used: u64,
}

#[derive(Debug, Default)]
struct Inner {
    map: BTreeMap<String, Entry>,
    tick: u64,
}

/// Deterministic LRU cache of [`CachedPlan`]s, shared behind an `Arc` by a
/// database and all its clones/subsets.
#[derive(Debug)]
pub struct PlanCache {
    inner: Mutex<Inner>,
    capacity: usize,
}

impl Default for PlanCache {
    fn default() -> Self {
        PlanCache::with_capacity(DEFAULT_CAPACITY)
    }
}

impl PlanCache {
    pub fn with_capacity(capacity: usize) -> Self {
        PlanCache {
            inner: Mutex::new(Inner::default()),
            capacity: capacity.max(1),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Look up a plan, refreshing its LRU tick on a hit.
    pub fn get(&self, key: &str) -> Option<CachedPlan> {
        let mut inner = self.lock();
        inner.tick += 1;
        let tick = inner.tick;
        inner.map.get_mut(key).map(|e| {
            e.last_used = tick;
            e.plan.clone()
        })
    }

    /// Is `key` cached? Does not refresh the LRU tick (used by EXPLAIN so
    /// inspecting a plan never changes eviction behaviour).
    pub fn peek(&self, key: &str) -> bool {
        self.lock().map.contains_key(key)
    }

    /// Insert (or replace) a plan, evicting the least-recently-used entry
    /// when over capacity.
    pub fn put(&self, key: String, plan: CachedPlan) {
        let mut inner = self.lock();
        inner.tick += 1;
        let tick = inner.tick;
        inner.map.insert(
            key,
            Entry {
                plan,
                last_used: tick,
            },
        );
        while inner.map.len() > self.capacity {
            // BTreeMap iteration is key-ordered, so the minimum tick is
            // found deterministically (first key wins ties).
            let victim = inner
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone());
            match victim {
                Some(k) => inner.map.remove(&k),
                None => break,
            };
        }
    }

    pub fn clear(&self) {
        self.lock().map.clear();
    }

    pub fn len(&self) -> usize {
        self.lock().map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Cache key: canonical SQL with every literal parameterized out and LIMIT
/// removed. Two instantiations of the same query template share a key.
pub fn normalized_key(query: &Query) -> String {
    let mut q = query.clone();
    q.predicate = q.predicate.as_ref().map(parameterize);
    q.limit = None;
    q.to_sql()
}

/// Replace every literal with the placeholder `'?'`; IN lists collapse to a
/// single placeholder so list length does not fragment the key space.
fn parameterize(e: &Expr) -> Expr {
    match e {
        Expr::Literal(_) => Expr::Literal(Value::Str("?".into())),
        Expr::Column(c) => Expr::Column(c.clone()),
        Expr::Slot(s) => Expr::Slot(*s),
        Expr::Cmp { op, lhs, rhs } => Expr::Cmp {
            op: *op,
            lhs: Box::new(parameterize(lhs)),
            rhs: Box::new(parameterize(rhs)),
        },
        Expr::Arith { op, lhs, rhs } => Expr::Arith {
            op: *op,
            lhs: Box::new(parameterize(lhs)),
            rhs: Box::new(parameterize(rhs)),
        },
        Expr::And(a, b) => Expr::And(Box::new(parameterize(a)), Box::new(parameterize(b))),
        Expr::Or(a, b) => Expr::Or(Box::new(parameterize(a)), Box::new(parameterize(b))),
        Expr::Not(x) => Expr::Not(Box::new(parameterize(x))),
        Expr::In { expr, negated, .. } => Expr::In {
            expr: Box::new(parameterize(expr)),
            list: vec![Value::Str("?".into())],
            negated: *negated,
        },
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => Expr::Between {
            expr: Box::new(parameterize(expr)),
            low: Box::new(parameterize(low)),
            high: Box::new(parameterize(high)),
            negated: *negated,
        },
        Expr::Like {
            expr,
            pattern,
            negated,
        } => Expr::Like {
            expr: Box::new(parameterize(expr)),
            pattern: pattern.clone(),
            negated: *negated,
        },
        Expr::IsNull { expr, negated } => Expr::IsNull {
            expr: Box::new(parameterize(expr)),
            negated: *negated,
        },
    }
}

/// FNV-1a fingerprint of a schema's column names and types. Cheap, stable
/// across processes, and sensitive to any column rename/retype/reorder —
/// exactly what cached plan validation needs.
pub fn schema_fingerprint(schema: &Schema) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(PRIME);
        }
    };
    for col in schema.columns() {
        eat(col.name.as_bytes());
        eat(&[0xff]);
        eat(format!("{:?}", col.ty).as_bytes());
        eat(&[0xfe]);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sql::parse;
    use crate::value::ValueType;

    fn plan(order: &[usize]) -> CachedPlan {
        CachedPlan {
            join_order: order.to_vec(),
            limit_pushdown: false,
            est_scan_rows: vec![1.0; order.len()],
            est_join_rows: Vec::new(),
            tables: Vec::new(),
        }
    }

    #[test]
    fn templated_queries_share_a_key() {
        let a = parse("SELECT t.name FROM title AS t WHERE t.year > 1990 LIMIT 5").unwrap();
        let b = parse("SELECT t.name FROM title AS t WHERE t.year > 2005 LIMIT 90").unwrap();
        assert_eq!(normalized_key(&a), normalized_key(&b));

        let c = parse("SELECT t.name FROM title AS t WHERE t.year < 1990").unwrap();
        assert_ne!(normalized_key(&a), normalized_key(&c), "operator differs");
    }

    #[test]
    fn in_lists_collapse() {
        let a = parse("SELECT t.id FROM title AS t WHERE t.kind IN ('a', 'b')").unwrap();
        let b = parse("SELECT t.id FROM title AS t WHERE t.kind IN ('z')").unwrap();
        assert_eq!(normalized_key(&a), normalized_key(&b));
        let c = parse("SELECT t.id FROM title AS t WHERE t.kind NOT IN ('z')").unwrap();
        assert_ne!(normalized_key(&a), normalized_key(&c), "negation kept");
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let cache = PlanCache::with_capacity(2);
        cache.put("a".into(), plan(&[0]));
        cache.put("b".into(), plan(&[0]));
        assert!(cache.get("a").is_some()); // refresh a
        cache.put("c".into(), plan(&[0])); // evicts b
        assert_eq!(cache.len(), 2);
        assert!(cache.peek("a"));
        assert!(!cache.peek("b"));
        assert!(cache.peek("c"));
    }

    #[test]
    fn peek_does_not_refresh() {
        let cache = PlanCache::with_capacity(2);
        cache.put("a".into(), plan(&[0]));
        cache.put("b".into(), plan(&[0]));
        assert!(cache.peek("a")); // no tick refresh
        cache.put("c".into(), plan(&[0])); // evicts a (oldest tick)
        assert!(!cache.peek("a"));
        assert!(cache.peek("b"));
    }

    #[test]
    fn fingerprint_tracks_schema_shape() {
        let a = Schema::build(&[("id", ValueType::Int), ("name", ValueType::Str)]);
        let b = Schema::build(&[("id", ValueType::Int), ("name", ValueType::Str)]);
        let c = Schema::build(&[("id", ValueType::Float), ("name", ValueType::Str)]);
        let d = Schema::build(&[("name", ValueType::Str), ("id", ValueType::Int)]);
        assert_eq!(schema_fingerprint(&a), schema_fingerprint(&b));
        assert_ne!(schema_fingerprint(&a), schema_fingerprint(&c));
        assert_ne!(schema_fingerprint(&a), schema_fingerprint(&d));
    }
}
