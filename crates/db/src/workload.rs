//! Weighted query workloads — the `Q`, `w` of the ANAQP problem statement.

use crate::query::Query;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A set of queries with normalised weights (`Σ w = 1`, paper §3).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Workload {
    pub queries: Vec<Query>,
    pub weights: Vec<f64>,
}

impl Workload {
    /// Uniform weights.
    pub fn uniform(queries: Vec<Query>) -> Self {
        let n = queries.len().max(1);
        let w = 1.0 / n as f64;
        let weights = vec![w; queries.len()];
        Workload { queries, weights }
    }

    /// Explicit weights, renormalised to sum to 1.
    pub fn weighted(queries: Vec<Query>, weights: Vec<f64>) -> Self {
        assert_eq!(queries.len(), weights.len(), "weight per query required");
        let mut w = Workload { queries, weights };
        w.normalize();
        w
    }

    pub fn len(&self) -> usize {
        self.queries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    pub fn normalize(&mut self) {
        let sum: f64 = self.weights.iter().sum();
        if sum > 0.0 {
            self.weights.iter_mut().for_each(|w| *w /= sum);
        } else if !self.weights.is_empty() {
            let u = 1.0 / self.weights.len() as f64;
            self.weights.iter_mut().for_each(|w| *w = u);
        }
    }

    pub fn iter(&self) -> impl Iterator<Item = (&Query, f64)> {
        self.queries.iter().zip(self.weights.iter().copied())
    }

    /// Shuffle and split into (train, test) with `train_frac` of queries in
    /// the training part; both halves are renormalised. Deterministic in
    /// `rng`.
    pub fn split(&self, train_frac: f64, rng: &mut impl Rng) -> (Workload, Workload) {
        let n = self.queries.len();
        let mut order: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            let j = rng.random_range(0..=i);
            order.swap(i, j);
        }
        let cut = ((n as f64) * train_frac.clamp(0.0, 1.0)).round() as usize;
        let take = |idx: &[usize]| {
            Workload::weighted(
                idx.iter().map(|&i| self.queries[i].clone()).collect(),
                idx.iter().map(|&i| self.weights[i]).collect(),
            )
        };
        (take(&order[..cut]), take(&order[cut..]))
    }

    /// Keep the first `frac` of queries (by index), renormalised — used by
    /// ASQP-Light's reduced training workload.
    pub fn truncate_frac(&self, frac: f64) -> Workload {
        let keep = ((self.len() as f64) * frac.clamp(0.0, 1.0)).ceil() as usize;
        Workload::weighted(
            self.queries[..keep.min(self.len())].to_vec(),
            self.weights[..keep.min(self.len())].to_vec(),
        )
    }

    /// Concatenate two workloads, renormalising weights.
    pub fn merge(&self, other: &Workload) -> Workload {
        let mut queries = self.queries.clone();
        queries.extend(other.queries.clone());
        let mut weights = self.weights.clone();
        weights.extend(other.weights.clone());
        Workload::weighted(queries, weights)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn queries(n: usize) -> Vec<Query> {
        (0..n).map(|i| Query::scan(format!("t{i}"))).collect()
    }

    #[test]
    fn uniform_sums_to_one() {
        let w = Workload::uniform(queries(4));
        assert!((w.weights.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert_eq!(w.weights[0], 0.25);
    }

    #[test]
    fn weighted_renormalises() {
        let w = Workload::weighted(queries(2), vec![2.0, 6.0]);
        assert!((w.weights[0] - 0.25).abs() < 1e-12);
        assert!((w.weights[1] - 0.75).abs() < 1e-12);
    }

    #[test]
    fn split_partitions_everything() {
        let w = Workload::uniform(queries(10));
        let mut rng = StdRng::seed_from_u64(5);
        let (train, test) = w.split(0.7, &mut rng);
        assert_eq!(train.len(), 7);
        assert_eq!(test.len(), 3);
        assert!((train.weights.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!((test.weights.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        let mut all: Vec<String> = train
            .queries
            .iter()
            .chain(&test.queries)
            .map(|q| q.to_sql())
            .collect();
        all.sort();
        let mut expected: Vec<String> = queries(10).iter().map(|q| q.to_sql()).collect();
        expected.sort();
        assert_eq!(all, expected);
    }

    #[test]
    fn truncate_frac_keeps_prefix() {
        let w = Workload::uniform(queries(10));
        let t = w.truncate_frac(0.25);
        assert_eq!(t.len(), 3); // ceil(2.5)
        assert!((t.weights.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn merge_combines() {
        let a = Workload::uniform(queries(2));
        let b = Workload::uniform(queries(3));
        let m = a.merge(&b);
        assert_eq!(m.len(), 5);
        assert!((m.weights.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zero_weights_fall_back_to_uniform() {
        let w = Workload::weighted(queries(2), vec![0.0, 0.0]);
        assert_eq!(w.weights, vec![0.5, 0.5]);
    }
}
