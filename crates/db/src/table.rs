//! A named, schema-checked, columnar table.

use crate::column::Column;
use crate::error::{DbError, DbResult};
use crate::schema::Schema;
use crate::value::{Row, Value};
use crate::zonemap::{TableZones, ZoneCache, MORSEL_ROWS};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::sync::Arc;

/// In-memory table: one [`Column`] per schema column, all equal length.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table {
    name: String,
    schema: Schema,
    columns: Vec<Column>,
    row_count: usize,
    /// Monotonically increasing data version, bumped by every mutation
    /// entry point (once per batch for the bulk paths). Derived caches —
    /// plans, cardinalities, statistics — record the version they were
    /// computed at and revalidate against it, so a stale read after an
    /// append or update is structurally impossible.
    #[serde(default)]
    data_version: u64,
    /// Lazily built zone maps (derived state; reset on clone/deserialize).
    #[serde(skip)]
    zones: ZoneCache,
}

impl Table {
    pub fn new(name: impl Into<String>, schema: Schema) -> Self {
        let columns = schema.columns().iter().map(|c| Column::new(c.ty)).collect();
        Table {
            name: name.into(),
            schema,
            columns,
            row_count: 0,
            data_version: 0,
            zones: ZoneCache::default(),
        }
    }

    pub fn with_capacity(name: impl Into<String>, schema: Schema, cap: usize) -> Self {
        let columns = schema
            .columns()
            .iter()
            .map(|c| Column::with_capacity(c.ty, cap))
            .collect();
        Table {
            name: name.into(),
            schema,
            columns,
            row_count: 0,
            data_version: 0,
            zones: ZoneCache::default(),
        }
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    pub fn row_count(&self) -> usize {
        self.row_count
    }

    /// Current data version (see the field docs). Starts at 0 for an empty
    /// table; a [`Table::subset`] snapshot inherits its parent's version.
    pub fn data_version(&self) -> u64 {
        self.data_version
    }

    pub fn is_empty(&self) -> bool {
        self.row_count == 0
    }

    pub fn column(&self, idx: usize) -> &Column {
        &self.columns[idx]
    }

    pub fn column_by_name(&self, name: &str) -> DbResult<&Column> {
        let idx = self.schema.require(name)?;
        Ok(&self.columns[idx])
    }

    /// Append a row after validating it against the schema.
    pub fn push_row(&mut self, row: &[Value]) -> DbResult<()> {
        self.schema.check_row(row)?;
        for (col, v) in self.columns.iter_mut().zip(row) {
            col.push(v)?;
        }
        self.row_count += 1;
        self.data_version += 1;
        self.zones.invalidate();
        Ok(())
    }

    /// Append a batch of rows atomically: every row is validated before any
    /// row is stored, so a bad batch leaves the table untouched. Bumps the
    /// data version once for the whole batch, and when zone maps are
    /// already built they are *extended* (only the trailing partial chunk
    /// plus the new rows are scanned) instead of being invalidated.
    pub fn append_rows(&mut self, rows: &[Row]) -> DbResult<usize> {
        for row in rows {
            self.schema.check_row(row)?;
        }
        if rows.is_empty() {
            return Ok(0);
        }
        let old_rows = self.row_count;
        let prior = self.zones.take_built();
        for row in rows {
            for (col, v) in self.columns.iter_mut().zip(row) {
                col.push(v)?;
            }
            self.row_count += 1;
        }
        self.data_version += 1;
        if let Some(z) = prior {
            self.zones.set(Arc::new(z.extended(self, old_rows)));
        }
        Ok(rows.len())
    }

    /// Overwrite existing rows in place; `updates` pairs row ids with full
    /// replacement rows. All ids and rows are validated before any write.
    /// Bumps the data version once; built zone maps are refreshed by
    /// recomputing only the touched chunks.
    pub fn update_rows(&mut self, updates: &[(usize, Row)]) -> DbResult<usize> {
        for (rid, row) in updates {
            if *rid >= self.row_count {
                return Err(DbError::ShapeMismatch(format!(
                    "row id {rid} out of range for table {} ({} rows)",
                    self.name, self.row_count
                )));
            }
            self.schema.check_row(row)?;
        }
        if updates.is_empty() {
            return Ok(0);
        }
        let prior = self.zones.take_built();
        let mut dirty: BTreeSet<usize> = BTreeSet::new();
        for (rid, row) in updates {
            for (col, v) in self.columns.iter_mut().zip(row) {
                col.set(*rid, v)?;
            }
            dirty.insert(*rid / MORSEL_ROWS);
        }
        self.data_version += 1;
        if let Some(z) = prior {
            let dirty: Vec<usize> = dirty.into_iter().collect();
            self.zones.set(Arc::new(z.refreshed(self, &dirty)));
        }
        Ok(updates.len())
    }

    /// Zone maps for this table, built on first use and cached until the
    /// next mutation. Used by the vectorized executor to skip morsels.
    pub fn zone_maps(&self) -> Arc<TableZones> {
        self.zones.get_or_build(|| TableZones::build(self))
    }

    /// Bulk load; fails on the first bad row (rows before it stay loaded).
    pub fn extend_rows<'a, I: IntoIterator<Item = &'a [Value]>>(
        &mut self,
        rows: I,
    ) -> DbResult<()> {
        for r in rows {
            self.push_row(r)?;
        }
        Ok(())
    }

    /// Materialise a full row.
    pub fn row(&self, idx: usize) -> Row {
        self.columns.iter().map(|c| c.get(idx)).collect()
    }

    /// Materialise a projection of a row.
    pub fn row_projected(&self, idx: usize, cols: &[usize]) -> Row {
        cols.iter().map(|&c| self.columns[c].get(idx)).collect()
    }

    pub fn value(&self, row: usize, col: usize) -> Value {
        self.columns[col].get(row)
    }

    /// Build a new table containing only `row_ids` (in the given order).
    /// This is how approximation-set sub-databases are materialised.
    pub fn subset(&self, row_ids: &[usize]) -> DbResult<Table> {
        let mut t = Table::with_capacity(self.name.clone(), self.schema.clone(), row_ids.len());
        for &rid in row_ids {
            if rid >= self.row_count {
                return Err(DbError::ShapeMismatch(format!(
                    "row id {rid} out of range for table {} ({} rows)",
                    self.name, self.row_count
                )));
            }
            let row = self.row(rid);
            t.push_row(&row)?;
        }
        // A subset is a snapshot of its parent *at the parent's current
        // version*: it inherits that version (overwriting the bumps from the
        // build loop above) so version-fingerprinted caches shared with the
        // parent — notably plan-cache entries — stay valid on the subset
        // until either side mutates.
        t.data_version = self.data_version;
        Ok(t)
    }

    /// An empty table with this table's name, schema, and data version —
    /// the "no rows selected" case of approximation-set materialisation.
    pub fn empty_like(&self) -> Table {
        let mut t = Table::new(self.name.clone(), self.schema.clone());
        t.data_version = self.data_version;
        t
    }

    /// Iterate row indices (mostly for readability at call sites).
    pub fn row_ids(&self) -> std::ops::Range<usize> {
        0..self.row_count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::ValueType;

    fn movies() -> Table {
        let schema = Schema::build(&[
            ("id", ValueType::Int),
            ("title", ValueType::Str),
            ("year", ValueType::Int),
        ]);
        let mut t = Table::new("movies", schema);
        t.push_row(&[Value::Int(1), "Alien".into(), Value::Int(1979)])
            .unwrap();
        t.push_row(&[Value::Int(2), "Arrival".into(), Value::Int(2016)])
            .unwrap();
        t.push_row(&[Value::Int(3), Value::Null, Value::Int(2020)])
            .unwrap();
        t
    }

    #[test]
    fn push_and_read() {
        let t = movies();
        assert_eq!(t.row_count(), 3);
        assert_eq!(t.value(0, 1), Value::Str("Alien".into()));
        assert_eq!(t.row(2), vec![Value::Int(3), Value::Null, Value::Int(2020)]);
    }

    #[test]
    fn schema_violation_rejected() {
        let mut t = movies();
        let err = t.push_row(&[Value::Str("oops".into()), Value::Null, Value::Null]);
        assert!(err.is_err());
        assert_eq!(t.row_count(), 3);
    }

    #[test]
    fn subset_preserves_order_and_content() {
        let t = movies();
        let s = t.subset(&[2, 0]).unwrap();
        assert_eq!(s.row_count(), 2);
        assert_eq!(s.value(0, 0), Value::Int(3));
        assert_eq!(s.value(1, 0), Value::Int(1));
        assert_eq!(s.name(), "movies");
    }

    #[test]
    fn subset_out_of_range() {
        let t = movies();
        assert!(t.subset(&[99]).is_err());
    }

    #[test]
    fn row_projected() {
        let t = movies();
        assert_eq!(
            t.row_projected(1, &[2, 0]),
            vec![Value::Int(2016), Value::Int(2)]
        );
    }

    #[test]
    fn append_rows_is_atomic_and_bumps_version_once() {
        let mut t = movies();
        let v0 = t.data_version();
        let bad = vec![
            vec![Value::Int(4), "Dune".into(), Value::Int(2021)],
            vec![Value::Str("oops".into()), Value::Null, Value::Null],
        ];
        assert!(t.append_rows(&bad).is_err());
        assert_eq!(t.row_count(), 3, "bad batch leaves the table untouched");
        assert_eq!(t.data_version(), v0);

        let good = vec![
            vec![Value::Int(4), "Dune".into(), Value::Int(2021)],
            vec![Value::Int(5), "Solaris".into(), Value::Int(1972)],
        ];
        assert_eq!(t.append_rows(&good).unwrap(), 2);
        assert_eq!(t.row_count(), 5);
        assert_eq!(t.data_version(), v0 + 1, "one bump per batch");
        assert_eq!(t.value(4, 2), Value::Int(1972));
    }

    #[test]
    fn append_keeps_warm_zone_maps_exact() {
        let mut t = movies();
        let before = t.zone_maps();
        assert!(before.columns[2].is_some());
        t.append_rows(&[vec![Value::Int(4), "Dune".into(), Value::Int(1902)]])
            .unwrap();
        let after = t.zone_maps();
        assert_eq!(*after, TableZones::build(&t), "extended ≡ rebuilt");
        assert_ne!(*after, *before);
    }

    #[test]
    fn update_rows_overwrites_in_place() {
        let mut t = movies();
        let v0 = t.data_version();
        let _warm = t.zone_maps();
        t.update_rows(&[(1, vec![Value::Int(2), "Arrival".into(), Value::Int(1800)])])
            .unwrap();
        assert_eq!(t.row_count(), 3);
        assert_eq!(t.value(1, 2), Value::Int(1800));
        assert_eq!(t.data_version(), v0 + 1);
        assert_eq!(*t.zone_maps(), TableZones::build(&t));

        assert!(t.update_rows(&[(99, vec![Value::Null; 3])]).is_err());
        assert_eq!(t.data_version(), v0 + 1, "failed update does not bump");
    }

    #[test]
    fn subset_and_empty_like_inherit_version() {
        let mut t = movies();
        t.append_rows(&[vec![Value::Int(4), "Dune".into(), Value::Int(2021)]])
            .unwrap();
        let s = t.subset(&[0, 2]).unwrap();
        assert_eq!(s.data_version(), t.data_version());
        let e = t.empty_like();
        assert_eq!(e.data_version(), t.data_version());
        assert_eq!(e.row_count(), 0);
    }
}
