//! A named, schema-checked, columnar table.

use crate::column::Column;
use crate::error::{DbError, DbResult};
use crate::schema::Schema;
use crate::value::{Row, Value};
use crate::zonemap::{TableZones, ZoneCache};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// In-memory table: one [`Column`] per schema column, all equal length.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table {
    name: String,
    schema: Schema,
    columns: Vec<Column>,
    row_count: usize,
    /// Lazily built zone maps (derived state; reset on clone/deserialize).
    #[serde(skip)]
    zones: ZoneCache,
}

impl Table {
    pub fn new(name: impl Into<String>, schema: Schema) -> Self {
        let columns = schema.columns().iter().map(|c| Column::new(c.ty)).collect();
        Table {
            name: name.into(),
            schema,
            columns,
            row_count: 0,
            zones: ZoneCache::default(),
        }
    }

    pub fn with_capacity(name: impl Into<String>, schema: Schema, cap: usize) -> Self {
        let columns = schema
            .columns()
            .iter()
            .map(|c| Column::with_capacity(c.ty, cap))
            .collect();
        Table {
            name: name.into(),
            schema,
            columns,
            row_count: 0,
            zones: ZoneCache::default(),
        }
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    pub fn row_count(&self) -> usize {
        self.row_count
    }

    pub fn is_empty(&self) -> bool {
        self.row_count == 0
    }

    pub fn column(&self, idx: usize) -> &Column {
        &self.columns[idx]
    }

    pub fn column_by_name(&self, name: &str) -> DbResult<&Column> {
        let idx = self.schema.require(name)?;
        Ok(&self.columns[idx])
    }

    /// Append a row after validating it against the schema.
    pub fn push_row(&mut self, row: &[Value]) -> DbResult<()> {
        self.schema.check_row(row)?;
        for (col, v) in self.columns.iter_mut().zip(row) {
            col.push(v)?;
        }
        self.row_count += 1;
        self.zones.invalidate();
        Ok(())
    }

    /// Zone maps for this table, built on first use and cached until the
    /// next mutation. Used by the vectorized executor to skip morsels.
    pub fn zone_maps(&self) -> Arc<TableZones> {
        self.zones.get_or_build(|| TableZones::build(self))
    }

    /// Bulk load; fails on the first bad row (rows before it stay loaded).
    pub fn extend_rows<'a, I: IntoIterator<Item = &'a [Value]>>(
        &mut self,
        rows: I,
    ) -> DbResult<()> {
        for r in rows {
            self.push_row(r)?;
        }
        Ok(())
    }

    /// Materialise a full row.
    pub fn row(&self, idx: usize) -> Row {
        self.columns.iter().map(|c| c.get(idx)).collect()
    }

    /// Materialise a projection of a row.
    pub fn row_projected(&self, idx: usize, cols: &[usize]) -> Row {
        cols.iter().map(|&c| self.columns[c].get(idx)).collect()
    }

    pub fn value(&self, row: usize, col: usize) -> Value {
        self.columns[col].get(row)
    }

    /// Build a new table containing only `row_ids` (in the given order).
    /// This is how approximation-set sub-databases are materialised.
    pub fn subset(&self, row_ids: &[usize]) -> DbResult<Table> {
        let mut t = Table::with_capacity(self.name.clone(), self.schema.clone(), row_ids.len());
        for &rid in row_ids {
            if rid >= self.row_count {
                return Err(DbError::ShapeMismatch(format!(
                    "row id {rid} out of range for table {} ({} rows)",
                    self.name, self.row_count
                )));
            }
            let row = self.row(rid);
            t.push_row(&row)?;
        }
        Ok(t)
    }

    /// Iterate row indices (mostly for readability at call sites).
    pub fn row_ids(&self) -> std::ops::Range<usize> {
        0..self.row_count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::ValueType;

    fn movies() -> Table {
        let schema = Schema::build(&[
            ("id", ValueType::Int),
            ("title", ValueType::Str),
            ("year", ValueType::Int),
        ]);
        let mut t = Table::new("movies", schema);
        t.push_row(&[Value::Int(1), "Alien".into(), Value::Int(1979)])
            .unwrap();
        t.push_row(&[Value::Int(2), "Arrival".into(), Value::Int(2016)])
            .unwrap();
        t.push_row(&[Value::Int(3), Value::Null, Value::Int(2020)])
            .unwrap();
        t
    }

    #[test]
    fn push_and_read() {
        let t = movies();
        assert_eq!(t.row_count(), 3);
        assert_eq!(t.value(0, 1), Value::Str("Alien".into()));
        assert_eq!(t.row(2), vec![Value::Int(3), Value::Null, Value::Int(2020)]);
    }

    #[test]
    fn schema_violation_rejected() {
        let mut t = movies();
        let err = t.push_row(&[Value::Str("oops".into()), Value::Null, Value::Null]);
        assert!(err.is_err());
        assert_eq!(t.row_count(), 3);
    }

    #[test]
    fn subset_preserves_order_and_content() {
        let t = movies();
        let s = t.subset(&[2, 0]).unwrap();
        assert_eq!(s.row_count(), 2);
        assert_eq!(s.value(0, 0), Value::Int(3));
        assert_eq!(s.value(1, 0), Value::Int(1));
        assert_eq!(s.name(), "movies");
    }

    #[test]
    fn subset_out_of_range() {
        let t = movies();
        assert!(t.subset(&[99]).is_err());
    }

    #[test]
    fn row_projected() {
        let t = movies();
        assert_eq!(
            t.row_projected(1, &[2, 0]),
            vec![Value::Int(2016), Value::Int(2)]
        );
    }
}
