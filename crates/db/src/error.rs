//! Error types for the relational substrate.

use std::fmt;

/// Every fallible operation in `asqp-db` returns this error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DbError {
    /// A named table was not found in the catalog.
    UnknownTable(String),
    /// A named column was not found in a schema.
    UnknownColumn(String),
    /// A column reference was ambiguous across joined tables.
    AmbiguousColumn(String),
    /// A value had the wrong type for the operation.
    TypeMismatch { expected: String, found: String },
    /// Row width or column length disagreed with the schema.
    ShapeMismatch(String),
    /// SQL text failed to lex or parse.
    Parse { message: String, position: usize },
    /// The query is structurally invalid (e.g. aggregate without group key).
    InvalidQuery(String),
    /// An identifier collided with an existing object.
    Duplicate(String),
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::UnknownTable(t) => write!(f, "unknown table: {t}"),
            DbError::UnknownColumn(c) => write!(f, "unknown column: {c}"),
            DbError::AmbiguousColumn(c) => write!(f, "ambiguous column: {c}"),
            DbError::TypeMismatch { expected, found } => {
                write!(f, "type mismatch: expected {expected}, found {found}")
            }
            DbError::ShapeMismatch(m) => write!(f, "shape mismatch: {m}"),
            DbError::Parse { message, position } => {
                write!(f, "parse error at byte {position}: {message}")
            }
            DbError::InvalidQuery(m) => write!(f, "invalid query: {m}"),
            DbError::Duplicate(name) => write!(f, "duplicate object: {name}"),
        }
    }
}

impl std::error::Error for DbError {}

/// Convenience alias used across the crate.
pub type DbResult<T> = Result<T, DbError>;
