//! Error types for the relational substrate.
//!
//! Errors are split into two classes (see [`DbError::class`]): **fatal**
//! errors name a defect in the query or catalog that no amount of retrying
//! will cure (unknown table, parse error, type mismatch), while
//! **transient** errors describe a momentary executor condition — resource
//! contention, an interrupted scan, a backend deadline — that a serving
//! layer may retry with backoff. The `asqp-serve` retry and degradation
//! ladder keys off this split.

use std::fmt;

/// Retry classification of a [`DbError`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorClass {
    /// Momentary executor condition; retrying may succeed.
    Transient,
    /// Defect in the query or catalog; retrying cannot succeed.
    Fatal,
}

/// Every fallible operation in `asqp-db` returns this error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DbError {
    /// A named table was not found in the catalog.
    UnknownTable(String),
    /// A named column was not found in a schema.
    UnknownColumn(String),
    /// A column reference was ambiguous across joined tables.
    AmbiguousColumn(String),
    /// A value had the wrong type for the operation.
    TypeMismatch { expected: String, found: String },
    /// Row width or column length disagreed with the schema.
    ShapeMismatch(String),
    /// SQL text failed to lex or parse.
    Parse { message: String, position: usize },
    /// The query is structurally invalid (e.g. aggregate without group key).
    InvalidQuery(String),
    /// An identifier collided with an existing object.
    Duplicate(String),
    /// Transient: the executor was momentarily out of a resource
    /// (worker slots, memory budget) and the operation was shed.
    Busy(String),
    /// Transient: execution was interrupted mid-flight (cancellation,
    /// an injected chaos fault, a lost backend connection).
    Interrupted(String),
    /// Transient: the operation exceeded a backend-side deadline.
    Timeout(String),
}

impl DbError {
    /// Whether retrying the failed operation can possibly succeed.
    pub fn class(&self) -> ErrorClass {
        match self {
            DbError::Busy(_) | DbError::Interrupted(_) | DbError::Timeout(_) => {
                ErrorClass::Transient
            }
            _ => ErrorClass::Fatal,
        }
    }

    /// Shorthand for `self.class() == ErrorClass::Transient`.
    pub fn is_transient(&self) -> bool {
        self.class() == ErrorClass::Transient
    }
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::UnknownTable(t) => write!(f, "unknown table: {t}"),
            DbError::UnknownColumn(c) => write!(f, "unknown column: {c}"),
            DbError::AmbiguousColumn(c) => write!(f, "ambiguous column: {c}"),
            DbError::TypeMismatch { expected, found } => {
                write!(f, "type mismatch: expected {expected}, found {found}")
            }
            DbError::ShapeMismatch(m) => write!(f, "shape mismatch: {m}"),
            DbError::Parse { message, position } => {
                write!(f, "parse error at byte {position}: {message}")
            }
            DbError::InvalidQuery(m) => write!(f, "invalid query: {m}"),
            DbError::Duplicate(name) => write!(f, "duplicate object: {name}"),
            DbError::Busy(m) => write!(f, "busy (transient): {m}"),
            DbError::Interrupted(m) => write!(f, "interrupted (transient): {m}"),
            DbError::Timeout(m) => write!(f, "timeout (transient): {m}"),
        }
    }
}

impl std::error::Error for DbError {}

/// Convenience alias used across the crate.
pub type DbResult<T> = Result<T, DbError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transient_variants_classify_as_transient() {
        for e in [
            DbError::Busy("shed".into()),
            DbError::Interrupted("fault".into()),
            DbError::Timeout("deadline".into()),
        ] {
            assert_eq!(e.class(), ErrorClass::Transient);
            assert!(e.is_transient());
            assert!(e.to_string().contains("transient"));
        }
    }

    #[test]
    fn structural_errors_classify_as_fatal() {
        for e in [
            DbError::UnknownTable("t".into()),
            DbError::UnknownColumn("c".into()),
            DbError::AmbiguousColumn("c".into()),
            DbError::TypeMismatch {
                expected: "INT".into(),
                found: "TEXT".into(),
            },
            DbError::ShapeMismatch("w".into()),
            DbError::Parse {
                message: "m".into(),
                position: 0,
            },
            DbError::InvalidQuery("q".into()),
            DbError::Duplicate("d".into()),
        ] {
            assert_eq!(e.class(), ErrorClass::Fatal);
            assert!(!e.is_transient());
        }
    }
}
