//! Query AST for the SQL subset: select–project–join queries with optional
//! aggregation, grouping, ordering and limits.
//!
//! This is exactly the query class the ASQP-RL paper works with: SPJ
//! (non-aggregate) workloads, plus aggregate queries that the system rewrites
//! into SPJ form for training ([`Query::strip_aggregates`]).

use crate::expr::{ColRef, Expr};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A table in the FROM clause, optionally aliased.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TableRef {
    pub table: String,
    pub alias: Option<String>,
}

impl TableRef {
    pub fn new(table: impl Into<String>) -> Self {
        TableRef {
            table: table.into(),
            alias: None,
        }
    }

    pub fn aliased(table: impl Into<String>, alias: impl Into<String>) -> Self {
        TableRef {
            table: table.into(),
            alias: Some(alias.into()),
        }
    }

    /// Name this table binds in the query's namespace.
    pub fn binding(&self) -> &str {
        self.alias.as_deref().unwrap_or(&self.table)
    }
}

impl fmt::Display for TableRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.alias {
            Some(a) => write!(f, "{} AS {a}", self.table),
            None => write!(f, "{}", self.table),
        }
    }
}

/// An equi-join condition `left = right` between two bound tables.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct JoinCond {
    pub left: ColRef,
    pub right: ColRef,
}

impl JoinCond {
    pub fn new(left: ColRef, right: ColRef) -> Self {
        JoinCond { left, right }
    }
}

impl fmt::Display for JoinCond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} = {}", self.left, self.right)
    }
}

/// Aggregate functions of the subset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AggFunc {
    Count,
    Sum,
    Avg,
    Min,
    Max,
}

impl fmt::Display for AggFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AggFunc::Count => "COUNT",
            AggFunc::Sum => "SUM",
            AggFunc::Avg => "AVG",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
        };
        write!(f, "{s}")
    }
}

/// One aggregate call, e.g. `SUM(f.dep_delay)` or `COUNT(*)`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AggExpr {
    pub func: AggFunc,
    /// `None` means `COUNT(*)`.
    pub arg: Option<ColRef>,
}

impl fmt::Display for AggExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.arg {
            Some(c) => write!(f, "{}({c})", self.func),
            None => write!(f, "{}(*)", self.func),
        }
    }
}

/// A SELECT-list item.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum SelectItem {
    /// `*` — every column of every bound table, in binding order.
    Star,
    Column(ColRef),
    Aggregate(AggExpr),
}

impl fmt::Display for SelectItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SelectItem::Star => write!(f, "*"),
            SelectItem::Column(c) => write!(f, "{c}"),
            SelectItem::Aggregate(a) => write!(f, "{a}"),
        }
    }
}

/// ORDER BY key: a column plus direction.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OrderKey {
    pub column: ColRef,
    pub desc: bool,
}

/// A query in the supported subset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Query {
    pub select: Vec<SelectItem>,
    pub distinct: bool,
    pub from: Vec<TableRef>,
    pub joins: Vec<JoinCond>,
    pub predicate: Option<Expr>,
    pub group_by: Vec<ColRef>,
    pub order_by: Vec<OrderKey>,
    pub limit: Option<usize>,
}

impl Query {
    /// `SELECT * FROM table`.
    pub fn scan(table: impl Into<String>) -> Query {
        Query {
            select: vec![SelectItem::Star],
            distinct: false,
            from: vec![TableRef::new(table)],
            joins: Vec::new(),
            predicate: None,
            group_by: Vec::new(),
            order_by: Vec::new(),
            limit: None,
        }
    }

    pub fn builder() -> QueryBuilder {
        QueryBuilder::default()
    }

    /// Does the select list contain any aggregate?
    pub fn is_aggregate(&self) -> bool {
        self.select
            .iter()
            .any(|s| matches!(s, SelectItem::Aggregate(_)))
    }

    /// Table names referenced in FROM (deduplicated, in order).
    pub fn referenced_tables(&self) -> Vec<&str> {
        let mut out: Vec<&str> = Vec::new();
        for t in &self.from {
            if !out.contains(&t.table.as_str()) {
                out.push(&t.table);
            }
        }
        out
    }

    /// The paper's aggregate→SPJ rewrite (Section 3, "Aggregate Queries"):
    /// drop aggregate and GROUP BY operators, projecting the group keys and
    /// the aggregate arguments instead, so the query can join the SPJ
    /// training workload. Non-aggregate queries are returned unchanged.
    pub fn strip_aggregates(&self) -> Query {
        if !self.is_aggregate() {
            return self.clone();
        }
        let mut select: Vec<SelectItem> = Vec::new();
        let push_col = |select: &mut Vec<SelectItem>, c: &ColRef| {
            let item = SelectItem::Column(c.clone());
            if !select.contains(&item) {
                select.push(item);
            }
        };
        for g in &self.group_by {
            push_col(&mut select, g);
        }
        for item in &self.select {
            match item {
                SelectItem::Aggregate(AggExpr { arg: Some(c), .. }) => push_col(&mut select, c),
                SelectItem::Column(c) => push_col(&mut select, c),
                _ => {}
            }
        }
        if select.is_empty() {
            // COUNT(*) with no group keys: keep everything.
            select.push(SelectItem::Star);
        }
        Query {
            select,
            distinct: false,
            from: self.from.clone(),
            joins: self.joins.clone(),
            predicate: self.predicate.clone(),
            group_by: Vec::new(),
            order_by: Vec::new(),
            limit: None,
        }
    }

    /// A canonical text form, also valid input for the SQL parser.
    pub fn to_sql(&self) -> String {
        self.to_string()
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SELECT ")?;
        if self.distinct {
            write!(f, "DISTINCT ")?;
        }
        for (i, s) in self.select.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{s}")?;
        }
        write!(f, " FROM ")?;
        for (i, t) in self.from.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        let mut where_parts: Vec<String> = self.joins.iter().map(|j| j.to_string()).collect();
        if let Some(p) = &self.predicate {
            where_parts.push(p.to_string());
        }
        if !where_parts.is_empty() {
            write!(f, " WHERE {}", where_parts.join(" AND "))?;
        }
        if !self.group_by.is_empty() {
            write!(f, " GROUP BY ")?;
            for (i, g) in self.group_by.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{g}")?;
            }
        }
        if !self.order_by.is_empty() {
            write!(f, " ORDER BY ")?;
            for (i, o) in self.order_by.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{}{}", o.column, if o.desc { " DESC" } else { "" })?;
            }
        }
        if let Some(l) = self.limit {
            write!(f, " LIMIT {l}")?;
        }
        Ok(())
    }
}

/// Fluent builder for [`Query`].
#[derive(Default, Debug, Clone)]
pub struct QueryBuilder {
    select: Vec<SelectItem>,
    distinct: bool,
    from: Vec<TableRef>,
    joins: Vec<JoinCond>,
    predicate: Option<Expr>,
    group_by: Vec<ColRef>,
    order_by: Vec<OrderKey>,
    limit: Option<usize>,
}

impl QueryBuilder {
    pub fn select_star(mut self) -> Self {
        self.select.push(SelectItem::Star);
        self
    }

    pub fn select_col(mut self, table: &str, column: &str) -> Self {
        self.select
            .push(SelectItem::Column(ColRef::new(table, column)));
        self
    }

    pub fn select_agg(mut self, func: AggFunc, arg: Option<ColRef>) -> Self {
        self.select
            .push(SelectItem::Aggregate(AggExpr { func, arg }));
        self
    }

    pub fn distinct(mut self) -> Self {
        self.distinct = true;
        self
    }

    pub fn from(mut self, table: &str) -> Self {
        self.from.push(TableRef::new(table));
        self
    }

    pub fn from_as(mut self, table: &str, alias: &str) -> Self {
        self.from.push(TableRef::aliased(table, alias));
        self
    }

    pub fn join_on(mut self, lt: &str, lc: &str, rt: &str, rc: &str) -> Self {
        self.joins
            .push(JoinCond::new(ColRef::new(lt, lc), ColRef::new(rt, rc)));
        self
    }

    pub fn filter(mut self, pred: Expr) -> Self {
        self.predicate = Some(match self.predicate {
            Some(p) => Expr::and(p, pred),
            None => pred,
        });
        self
    }

    pub fn group_by(mut self, table: &str, column: &str) -> Self {
        self.group_by.push(ColRef::new(table, column));
        self
    }

    pub fn order_by(mut self, table: &str, column: &str, desc: bool) -> Self {
        self.order_by.push(OrderKey {
            column: ColRef::new(table, column),
            desc,
        });
        self
    }

    pub fn limit(mut self, n: usize) -> Self {
        self.limit = Some(n);
        self
    }

    pub fn build(mut self) -> Query {
        if self.select.is_empty() {
            self.select.push(SelectItem::Star);
        }
        Query {
            select: self.select,
            distinct: self.distinct,
            from: self.from,
            joins: self.joins,
            predicate: self.predicate,
            group_by: self.group_by,
            order_by: self.order_by,
            limit: self.limit,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::CmpOp;

    #[test]
    fn display_spj() {
        let q = Query::builder()
            .select_col("m", "title")
            .from_as("movies", "m")
            .from_as("cast_info", "c")
            .join_on("m", "id", "c", "movie_id")
            .filter(Expr::cmp(
                CmpOp::Gt,
                Expr::col("m", "year"),
                Expr::lit(2000),
            ))
            .limit(10)
            .build();
        assert_eq!(
            q.to_sql(),
            "SELECT m.title FROM movies AS m, cast_info AS c \
             WHERE m.id = c.movie_id AND m.year > 2000 LIMIT 10"
        );
        assert!(!q.is_aggregate());
    }

    #[test]
    fn strip_aggregates_projects_keys_and_args() {
        let q = Query::builder()
            .select_agg(AggFunc::Avg, Some(ColRef::new("f", "dep_delay")))
            .from_as("flights", "f")
            .group_by("f", "carrier")
            .build();
        assert!(q.is_aggregate());
        let spj = q.strip_aggregates();
        assert!(!spj.is_aggregate());
        assert_eq!(
            spj.select,
            vec![
                SelectItem::Column(ColRef::new("f", "carrier")),
                SelectItem::Column(ColRef::new("f", "dep_delay")),
            ]
        );
        assert!(spj.group_by.is_empty());
        assert!(spj.limit.is_none());
    }

    #[test]
    fn strip_count_star_keeps_star() {
        let q = Query::builder()
            .select_agg(AggFunc::Count, None)
            .from("movies")
            .build();
        let spj = q.strip_aggregates();
        assert_eq!(spj.select, vec![SelectItem::Star]);
    }

    #[test]
    fn non_aggregate_strip_is_identity() {
        let q = Query::scan("movies");
        assert_eq!(q.strip_aggregates(), q);
    }

    #[test]
    fn referenced_tables_dedup() {
        let q = Query::builder()
            .select_star()
            .from_as("t", "a")
            .from_as("t", "b")
            .from("u")
            .build();
        assert_eq!(q.referenced_tables(), vec!["t", "u"]);
    }

    #[test]
    fn binding_prefers_alias() {
        assert_eq!(TableRef::aliased("movies", "m").binding(), "m");
        assert_eq!(TableRef::new("movies").binding(), "movies");
    }
}
