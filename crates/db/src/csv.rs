//! CSV import/export — the practical on-ramp for loading real data into the
//! engine (and therefore into ASQP-RL training).
//!
//! Dialect: comma-separated, `"`-quoted fields with `""` escapes, first row
//! is the header. Types are inferred column-by-column from the data unless a
//! schema is supplied: INT ⊂ FLOAT ⊂ TEXT, with BOOL for true/false columns
//! and empty fields as NULL.

use crate::error::{DbError, DbResult};
use crate::schema::Schema;
use crate::table::Table;
use crate::value::{Value, ValueType};
use std::fmt::Write as _;

/// Parse one CSV record (handles quotes); returns fields and consumed bytes.
fn parse_record(input: &str) -> Option<(Vec<String>, usize)> {
    if input.is_empty() {
        return None;
    }
    let bytes = input.as_bytes();
    let mut fields = Vec::new();
    let mut field = String::new();
    let mut i = 0usize;
    let mut in_quotes = false;
    while i < bytes.len() {
        let c = bytes[i];
        if in_quotes {
            if c == b'"' {
                if bytes.get(i + 1) == Some(&b'"') {
                    field.push('"');
                    i += 2;
                    continue;
                }
                in_quotes = false;
                i += 1;
            } else {
                // Multi-byte chars are copied verbatim.
                let ch_len = utf8_len(c);
                field.push_str(&input[i..i + ch_len]);
                i += ch_len;
            }
        } else {
            match c {
                b'"' if field.is_empty() => {
                    in_quotes = true;
                    i += 1;
                }
                b',' => {
                    fields.push(std::mem::take(&mut field));
                    i += 1;
                }
                b'\r' if bytes.get(i + 1) == Some(&b'\n') => {
                    fields.push(std::mem::take(&mut field));
                    return Some((fields, i + 2));
                }
                b'\n' => {
                    fields.push(std::mem::take(&mut field));
                    return Some((fields, i + 1));
                }
                _ => {
                    let ch_len = utf8_len(c);
                    field.push_str(&input[i..i + ch_len]);
                    i += ch_len;
                }
            }
        }
    }
    fields.push(field);
    Some((fields, bytes.len()))
}

fn utf8_len(first_byte: u8) -> usize {
    match first_byte {
        b if b < 0x80 => 1,
        b if b >= 0xF0 => 4,
        b if b >= 0xE0 => 3,
        _ => 2,
    }
}

/// Parse a full CSV document into (header, records), skipping blank lines.
fn parse_csv(text: &str) -> DbResult<(Vec<String>, Vec<Vec<String>>)> {
    let mut rest = text;
    let mut rows: Vec<Vec<String>> = Vec::new();
    while let Some((fields, used)) = parse_record(rest) {
        rest = &rest[used..];
        if fields.len() == 1 && fields[0].is_empty() {
            continue; // blank line
        }
        rows.push(fields);
        if rest.is_empty() {
            break;
        }
    }
    if rows.is_empty() {
        return Err(DbError::ShapeMismatch("CSV has no header row".into()));
    }
    let header = rows.remove(0);
    Ok((header, rows))
}

/// Infer the narrowest [`ValueType`] that admits every non-empty cell.
fn infer_type(cells: impl Iterator<Item = impl AsRef<str>>) -> ValueType {
    let mut ty = None::<ValueType>;
    for cell in cells {
        let s = cell.as_ref().trim();
        if s.is_empty() {
            continue;
        }
        let cell_ty = if s.parse::<i64>().is_ok() {
            ValueType::Int
        } else if s.parse::<f64>().is_ok() {
            ValueType::Float
        } else if s.eq_ignore_ascii_case("true") || s.eq_ignore_ascii_case("false") {
            ValueType::Bool
        } else {
            ValueType::Str
        };
        ty = Some(match (ty, cell_ty) {
            (None, t) => t,
            (Some(a), b) if a == b => a,
            (Some(ValueType::Int), ValueType::Float) | (Some(ValueType::Float), ValueType::Int) => {
                ValueType::Float
            }
            _ => ValueType::Str,
        });
    }
    ty.unwrap_or(ValueType::Str)
}

fn parse_cell(s: &str, ty: ValueType) -> DbResult<Value> {
    let t = s.trim();
    if t.is_empty() {
        return Ok(Value::Null);
    }
    Ok(match ty {
        ValueType::Int => Value::Int(t.parse().map_err(|_| DbError::TypeMismatch {
            expected: "INT".into(),
            found: t.to_string(),
        })?),
        ValueType::Float => Value::Float(t.parse().map_err(|_| DbError::TypeMismatch {
            expected: "FLOAT".into(),
            found: t.to_string(),
        })?),
        ValueType::Bool => Value::Bool(t.eq_ignore_ascii_case("true")),
        ValueType::Str => Value::Str(s.to_string()),
    })
}

/// Load CSV text into a new table named `name`. With `schema: None`, column
/// types are inferred from the data.
pub fn load_csv(name: &str, text: &str, schema: Option<Schema>) -> DbResult<Table> {
    let (header, rows) = parse_csv(text)?;
    let schema = match schema {
        Some(s) => {
            if s.len() != header.len() {
                return Err(DbError::ShapeMismatch(format!(
                    "schema has {} columns, CSV header has {}",
                    s.len(),
                    header.len()
                )));
            }
            s
        }
        None => {
            let defs: Vec<(String, ValueType)> = header
                .iter()
                .enumerate()
                .map(|(ci, h)| {
                    let ty = infer_type(rows.iter().filter_map(|r| r.get(ci)));
                    (h.trim().to_string(), ty)
                })
                .collect();
            Schema::build(
                &defs
                    .iter()
                    .map(|(n, t)| (n.as_str(), *t))
                    .collect::<Vec<_>>(),
            )
        }
    };

    let mut table = Table::with_capacity(name, schema.clone(), rows.len());
    for (ri, row) in rows.iter().enumerate() {
        if row.len() != schema.len() {
            return Err(DbError::ShapeMismatch(format!(
                "record {} has {} fields, expected {}",
                ri + 2, // 1-based, after the header
                row.len(),
                schema.len()
            )));
        }
        let values: Vec<Value> = row
            .iter()
            .zip(schema.columns())
            .map(|(cell, col)| parse_cell(cell, col.ty))
            .collect::<DbResult<_>>()?;
        table.push_row(&values)?;
    }
    Ok(table)
}

/// Export a table (or query result rows with column names) as CSV text.
pub fn to_csv(columns: &[String], rows: &[Vec<Value>]) -> String {
    let quote = |s: &str| {
        if s.contains([',', '"', '\n']) {
            format!("\"{}\"", s.replace('"', "\"\""))
        } else {
            s.to_string()
        }
    };
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{}",
        columns
            .iter()
            .map(|c| quote(c))
            .collect::<Vec<_>>()
            .join(",")
    );
    for row in rows {
        let cells: Vec<String> = row
            .iter()
            .map(|v| match v {
                Value::Null => String::new(),
                Value::Str(s) => quote(s),
                other => other.to_string(),
            })
            .collect();
        let _ = writeln!(out, "{}", cells.join(","));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "id,name,score,active\n1,alice,9.5,true\n2,\"bob, the \"\"builder\"\"\",7,false\n3,carol,,true\n";

    #[test]
    fn load_with_inference() {
        let t = load_csv("people", SAMPLE, None).unwrap();
        assert_eq!(t.row_count(), 3);
        let s = t.schema();
        assert_eq!(s.column(0).ty, ValueType::Int);
        assert_eq!(s.column(1).ty, ValueType::Str);
        assert_eq!(s.column(2).ty, ValueType::Float);
        assert_eq!(s.column(3).ty, ValueType::Bool);
        assert_eq!(t.value(1, 1), Value::Str("bob, the \"builder\"".into()));
        assert_eq!(t.value(2, 2), Value::Null);
    }

    #[test]
    fn roundtrip_through_csv() {
        let t = load_csv("people", SAMPLE, None).unwrap();
        let cols: Vec<String> = t
            .schema()
            .columns()
            .iter()
            .map(|c| c.name.clone())
            .collect();
        let rows: Vec<Vec<Value>> = (0..t.row_count()).map(|r| t.row(r)).collect();
        let text = to_csv(&cols, &rows);
        let t2 = load_csv("people2", &text, Some(t.schema().clone())).unwrap();
        for r in 0..t.row_count() {
            assert_eq!(t.row(r), t2.row(r));
        }
    }

    #[test]
    fn mixed_int_float_widens() {
        let t = load_csv("t", "x\n1\n2.5\n3\n", None).unwrap();
        assert_eq!(t.schema().column(0).ty, ValueType::Float);
        assert_eq!(t.value(0, 0), Value::Float(1.0));
    }

    #[test]
    fn shape_errors() {
        assert!(load_csv("t", "", None).is_err());
        assert!(load_csv("t", "a,b\n1\n", None).is_err());
    }

    #[test]
    fn crlf_and_blank_lines() {
        let t = load_csv("t", "a,b\r\n1,2\r\n\r\n3,4\r\n", None).unwrap();
        assert_eq!(t.row_count(), 2);
        assert_eq!(t.value(1, 1), Value::Int(4));
    }

    #[test]
    fn loaded_table_is_queryable() {
        let mut db = crate::Database::new();
        db.add_table(load_csv("people", SAMPLE, None).unwrap())
            .unwrap();
        let r = db
            .sql("SELECT people.name FROM people WHERE people.score >= 8")
            .unwrap();
        assert_eq!(r.rows.len(), 1);
        assert_eq!(r.rows[0][0], Value::Str("alice".into()));
    }
}
