//! Table and column statistics.
//!
//! ASQP-RL's *unknown workload* mode (paper §4.5) synthesises queries from
//! "statistical information collected from the tables, such as the mean and
//! standard deviation of numerical columns, a sampled set of categorical
//! columns (with repetition to account for popularity)". This module
//! computes exactly that, plus histograms used by the QuickR-style baseline.
//!
//! Statistics are produced in two stages so they can be maintained
//! *incrementally* under appends and in-place updates:
//!
//! 1. [`StatsAccum`] — an order-insensitive accumulator (per-column value
//!    counts in a `BTreeMap`). Absorbing rows one batch at a time converges
//!    to exactly the accumulator a from-scratch pass would build.
//! 2. [`StatsAccum::derive`] — a pure, value-ordered walk of the
//!    accumulator producing [`TableStats`]. Because derivation never sees
//!    arrival order, incrementally maintained statistics are byte-identical
//!    to rebuilt-from-scratch ones (the `incremental_equivalence` suite
//!    asserts this).

use crate::schema::Schema;
use crate::table::Table;
use crate::value::{Value, ValueType};
use asqp_telemetry as telemetry;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Number of most-frequent values retained per column.
pub const TOP_K: usize = 16;
/// Equi-width histogram bucket count for numeric columns.
pub const HIST_BUCKETS: usize = 20;

/// Statistics for one column.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ColumnStats {
    pub name: String,
    pub ty: ValueType,
    pub null_count: usize,
    pub distinct: usize,
    pub min: Option<Value>,
    pub max: Option<Value>,
    /// Numeric mean/std (None for non-numeric columns or all-null).
    pub mean: Option<f64>,
    pub std: Option<f64>,
    /// Most frequent values with their counts, descending.
    pub top_values: Vec<(Value, usize)>,
    /// Equi-width histogram over `[min, max]` for numeric columns.
    pub histogram: Vec<usize>,
}

impl ColumnStats {
    /// Fraction of non-null rows falling in `[lo, hi]`, estimated from the
    /// histogram (numeric columns only).
    pub fn range_selectivity(&self, lo: f64, hi: f64) -> f64 {
        let (Some(minv), Some(maxv)) = (&self.min, &self.max) else {
            return 0.0;
        };
        let (Some(minf), Some(maxf)) = (minv.as_f64(), maxv.as_f64()) else {
            return 0.0;
        };
        let total: usize = self.histogram.iter().sum();
        if total == 0 {
            return 0.0;
        }
        if maxf <= minf {
            return if lo <= minf && minf <= hi { 1.0 } else { 0.0 };
        }
        let width = (maxf - minf) / self.histogram.len() as f64;
        let mut hits = 0.0;
        for (i, &c) in self.histogram.iter().enumerate() {
            let b_lo = minf + i as f64 * width;
            let b_hi = b_lo + width;
            let overlap = (hi.min(b_hi) - lo.max(b_lo)).max(0.0);
            if overlap > 0.0 {
                hits += c as f64 * (overlap / width).min(1.0);
            }
        }
        (hits / total as f64).clamp(0.0, 1.0)
    }
}

/// Statistics for one table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TableStats {
    pub table: String,
    pub row_count: usize,
    pub columns: Vec<ColumnStats>,
}

/// Order-insensitive per-column accumulator: exact value counts plus a null
/// count. Two accumulators that saw the same multiset of rows are equal,
/// whatever the arrival order or batching.
#[derive(Debug, Clone, Default, PartialEq)]
struct ColumnAccum {
    counts: BTreeMap<Value, usize>,
    null_count: usize,
}

impl ColumnAccum {
    fn add(&mut self, v: Value) {
        if v.is_null() {
            self.null_count += 1;
        } else {
            *self.counts.entry(v).or_insert(0) += 1;
        }
    }

    fn remove(&mut self, v: &Value) {
        if v.is_null() {
            self.null_count = self.null_count.saturating_sub(1);
        } else if let Some(c) = self.counts.get_mut(v) {
            *c -= 1;
            if *c == 0 {
                self.counts.remove(v);
            }
        }
    }
}

/// Incrementally maintainable statistics state for one table (see the
/// module docs for the two-stage design).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StatsAccum {
    row_count: usize,
    columns: Vec<ColumnAccum>,
}

impl StatsAccum {
    /// Full O(rows × columns) pass over a table. This is the expensive
    /// stage; per-query callers should go through
    /// [`crate::catalog::Database::table_stats`], which memoises the
    /// accumulator until the table's data version moves. The counter below
    /// is what the memoisation regression test asserts on.
    pub fn from_table(table: &Table) -> StatsAccum {
        telemetry::counter("db.stats.computes", 1);
        let mut acc = StatsAccum {
            row_count: 0,
            columns: vec![ColumnAccum::default(); table.schema().len()],
        };
        acc.absorb_rows(table, 0);
        acc
    }

    /// Fold rows `[from_row, table.row_count())` into the accumulator — the
    /// incremental append path. Absorbing a batch costs O(batch × columns),
    /// independent of how large the table already is.
    pub fn absorb_rows(&mut self, table: &Table, from_row: usize) {
        let n = table.row_count();
        for (ci, acc) in self.columns.iter_mut().enumerate() {
            let col = table.column(ci);
            for rid in from_row..n {
                acc.add(col.get(rid));
            }
        }
        self.row_count = n;
    }

    /// Apply an in-place row overwrite: retract the old row's values and
    /// absorb the new row's. Row count is unchanged.
    pub fn apply_update(&mut self, old_row: &[Value], new_row: &[Value]) {
        for (ci, acc) in self.columns.iter_mut().enumerate() {
            if let (Some(old), Some(new)) = (old_row.get(ci), new_row.get(ci)) {
                acc.remove(old);
                acc.add(new.clone());
            }
        }
    }

    /// Derive [`TableStats`] from the accumulator: a pure walk in value
    /// order (distinct counts, BTreeMap endpoints for min/max, count-
    /// weighted sums for mean/std, per-value histogram bucketing, top-K by
    /// count-then-value). Costs O(distinct × columns).
    pub fn derive(&self, table_name: &str, schema: &Schema) -> TableStats {
        let columns = schema
            .columns()
            .iter()
            .zip(&self.columns)
            .map(|(cdef, acc)| {
                let distinct = acc.counts.len();
                let min = acc.counts.keys().next().cloned();
                let max = acc.counts.keys().next_back().cloned();

                let mut sum = 0.0f64;
                let mut sum_sq = 0.0f64;
                let mut numeric_n = 0usize;
                for (v, &c) in &acc.counts {
                    if let Some(f) = v.as_f64() {
                        sum += f * c as f64;
                        sum_sq += f * f * c as f64;
                        numeric_n += c;
                    }
                }
                let (mean, std) = if numeric_n > 0 {
                    let m = sum / numeric_n as f64;
                    let var = (sum_sq / numeric_n as f64 - m * m).max(0.0);
                    (Some(m), Some(var.sqrt()))
                } else {
                    (None, None)
                };

                let mut top: Vec<(Value, usize)> =
                    acc.counts.iter().map(|(v, &c)| (v.clone(), c)).collect();
                top.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
                top.truncate(TOP_K);

                let mut histogram = vec![0usize; 0];
                if numeric_n > 0 {
                    let minf = min.as_ref().and_then(Value::as_f64).unwrap_or(0.0);
                    let maxf = max.as_ref().and_then(Value::as_f64).unwrap_or(0.0);
                    histogram = vec![0usize; HIST_BUCKETS];
                    let width = ((maxf - minf) / HIST_BUCKETS as f64).max(f64::MIN_POSITIVE);
                    for (v, &c) in &acc.counts {
                        if let Some(f) = v.as_f64() {
                            let b = (((f - minf) / width) as usize).min(HIST_BUCKETS - 1);
                            histogram[b] += c;
                        }
                    }
                }

                ColumnStats {
                    name: cdef.name.clone(),
                    ty: cdef.ty,
                    null_count: acc.null_count,
                    distinct,
                    min,
                    max,
                    mean,
                    std,
                    top_values: top,
                    histogram,
                }
            })
            .collect();
        TableStats {
            table: table_name.to_string(),
            row_count: self.row_count,
            columns,
        }
    }
}

impl TableStats {
    /// Compute statistics from scratch (accumulate, then derive).
    pub fn compute(table: &Table) -> TableStats {
        StatsAccum::from_table(table).derive(table.name(), table.schema())
    }

    pub fn column(&self, name: &str) -> Option<&ColumnStats> {
        self.columns.iter().find(|c| c.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;

    fn table() -> Table {
        let mut t = Table::new(
            "t",
            Schema::build(&[("x", ValueType::Int), ("s", ValueType::Str)]),
        );
        for i in 0..100 {
            let s = if i % 10 == 0 { "common" } else { "rare" };
            let x = if i == 50 { Value::Null } else { Value::Int(i) };
            t.push_row(&[x, Value::Str(s.into())]).unwrap();
        }
        t
    }

    #[test]
    fn basic_stats() {
        let s = TableStats::compute(&table());
        assert_eq!(s.row_count, 100);
        let x = s.column("x").unwrap();
        assert_eq!(x.null_count, 1);
        assert_eq!(x.distinct, 99);
        assert_eq!(x.min, Some(Value::Int(0)));
        assert_eq!(x.max, Some(Value::Int(99)));
        let mean = x.mean.unwrap();
        assert!((mean - (4950.0 - 50.0) / 99.0).abs() < 1e-9);

        let str_col = s.column("s").unwrap();
        assert_eq!(str_col.distinct, 2);
        assert_eq!(str_col.top_values[0].0, Value::Str("rare".into()));
        assert_eq!(str_col.top_values[0].1, 90);
        assert!(str_col.mean.is_none());
        assert!(str_col.histogram.is_empty());
    }

    #[test]
    fn range_selectivity_sane() {
        let s = TableStats::compute(&table());
        let x = s.column("x").unwrap();
        let all = x.range_selectivity(0.0, 99.0);
        assert!(
            (all - 1.0).abs() < 1e-9,
            "full range covers everything: {all}"
        );
        let half = x.range_selectivity(0.0, 49.0);
        assert!(half > 0.3 && half < 0.7, "half range ~ half: {half}");
        assert_eq!(x.range_selectivity(1000.0, 2000.0), 0.0);
    }

    #[test]
    fn empty_table() {
        let t = Table::new("e", Schema::build(&[("x", ValueType::Int)]));
        let s = TableStats::compute(&t);
        assert_eq!(s.row_count, 0);
        assert_eq!(s.columns[0].distinct, 0);
        assert!(s.columns[0].min.is_none());
        assert!(s.columns[0].mean.is_none());
    }

    #[test]
    fn absorb_converges_to_from_scratch() {
        let full = table();
        let mut staged = Table::new(
            "t",
            Schema::build(&[("x", ValueType::Int), ("s", ValueType::Str)]),
        );
        for rid in 0..40 {
            staged.push_row(&full.row(rid)).unwrap();
        }
        let mut acc = StatsAccum::from_table(&staged);
        for rid in 40..full.row_count() {
            staged.push_row(&full.row(rid)).unwrap();
        }
        acc.absorb_rows(&staged, 40);
        assert_eq!(acc, StatsAccum::from_table(&full));
        assert_eq!(
            acc.derive("t", full.schema()),
            TableStats::compute(&full),
            "incremental derive ≡ from-scratch compute"
        );
    }

    #[test]
    fn apply_update_retracts_and_absorbs() {
        let mut t = table();
        let mut acc = StatsAccum::from_table(&t);
        let old = t.row(3);
        let new = vec![Value::Int(500), Value::Str("common".into())];
        t.update_rows(&[(3, new.clone())]).unwrap();
        acc.apply_update(&old, &new);
        assert_eq!(acc, StatsAccum::from_table(&t));
        assert_eq!(acc.derive("t", t.schema()), TableStats::compute(&t));
    }
}
