//! Table and column statistics.
//!
//! ASQP-RL's *unknown workload* mode (paper §4.5) synthesises queries from
//! "statistical information collected from the tables, such as the mean and
//! standard deviation of numerical columns, a sampled set of categorical
//! columns (with repetition to account for popularity)". This module
//! computes exactly that, plus histograms used by the QuickR-style baseline.

use crate::table::Table;
use crate::value::{Value, ValueType};
use asqp_telemetry as telemetry;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Number of most-frequent values retained per column.
pub const TOP_K: usize = 16;
/// Equi-width histogram bucket count for numeric columns.
pub const HIST_BUCKETS: usize = 20;

/// Statistics for one column.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ColumnStats {
    pub name: String,
    pub ty: ValueType,
    pub null_count: usize,
    pub distinct: usize,
    pub min: Option<Value>,
    pub max: Option<Value>,
    /// Numeric mean/std (None for non-numeric columns or all-null).
    pub mean: Option<f64>,
    pub std: Option<f64>,
    /// Most frequent values with their counts, descending.
    pub top_values: Vec<(Value, usize)>,
    /// Equi-width histogram over `[min, max]` for numeric columns.
    pub histogram: Vec<usize>,
}

impl ColumnStats {
    /// Fraction of non-null rows falling in `[lo, hi]`, estimated from the
    /// histogram (numeric columns only).
    pub fn range_selectivity(&self, lo: f64, hi: f64) -> f64 {
        let (Some(minv), Some(maxv)) = (&self.min, &self.max) else {
            return 0.0;
        };
        let (Some(minf), Some(maxf)) = (minv.as_f64(), maxv.as_f64()) else {
            return 0.0;
        };
        let total: usize = self.histogram.iter().sum();
        if total == 0 {
            return 0.0;
        }
        if maxf <= minf {
            return if lo <= minf && minf <= hi { 1.0 } else { 0.0 };
        }
        let width = (maxf - minf) / self.histogram.len() as f64;
        let mut hits = 0.0;
        for (i, &c) in self.histogram.iter().enumerate() {
            let b_lo = minf + i as f64 * width;
            let b_hi = b_lo + width;
            let overlap = (hi.min(b_hi) - lo.max(b_lo)).max(0.0);
            if overlap > 0.0 {
                hits += c as f64 * (overlap / width).min(1.0);
            }
        }
        (hits / total as f64).clamp(0.0, 1.0)
    }
}

/// Statistics for one table.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TableStats {
    pub table: String,
    pub row_count: usize,
    pub columns: Vec<ColumnStats>,
}

impl TableStats {
    /// Compute statistics with a single pass per column.
    ///
    /// This is an O(rows × columns) walk; per-query callers should go
    /// through [`crate::catalog::Database::table_stats`], which memoises the
    /// result until the table mutates. The counter below is what the
    /// memoisation regression test asserts on.
    pub fn compute(table: &Table) -> TableStats {
        telemetry::counter("db.stats.computes", 1);
        let n = table.row_count();
        let mut columns = Vec::with_capacity(table.schema().len());
        for (ci, cdef) in table.schema().columns().iter().enumerate() {
            let col = table.column(ci);
            let mut null_count = 0usize;
            let mut counts: HashMap<Value, usize> = HashMap::new();
            let mut min: Option<Value> = None;
            let mut max: Option<Value> = None;
            let mut sum = 0.0f64;
            let mut sum_sq = 0.0f64;
            let mut numeric_n = 0usize;
            for rid in 0..n {
                let v = col.get(rid);
                if v.is_null() {
                    null_count += 1;
                    continue;
                }
                if min.as_ref().is_none_or(|m| v < *m) {
                    min = Some(v.clone());
                }
                if max.as_ref().is_none_or(|m| v > *m) {
                    max = Some(v.clone());
                }
                if let Some(f) = v.as_f64() {
                    sum += f;
                    sum_sq += f * f;
                    numeric_n += 1;
                }
                *counts.entry(v).or_insert(0) += 1;
            }
            let distinct = counts.len();
            // asqp::allow(iter-order): sorted with a total tie-break immediately below
            let mut top: Vec<(Value, usize)> = counts.into_iter().collect();
            top.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
            top.truncate(TOP_K);

            let (mean, std) = if numeric_n > 0 {
                let m = sum / numeric_n as f64;
                let var = (sum_sq / numeric_n as f64 - m * m).max(0.0);
                (Some(m), Some(var.sqrt()))
            } else {
                (None, None)
            };

            // Histogram (second cheap pass, numeric only).
            let mut histogram = vec![0usize; 0];
            if numeric_n > 0 {
                let minf = min.as_ref().and_then(Value::as_f64).unwrap_or(0.0);
                let maxf = max.as_ref().and_then(Value::as_f64).unwrap_or(0.0);
                histogram = vec![0usize; HIST_BUCKETS];
                let width = ((maxf - minf) / HIST_BUCKETS as f64).max(f64::MIN_POSITIVE);
                for rid in 0..n {
                    if let Some(f) = col.get_f64(rid) {
                        let b = (((f - minf) / width) as usize).min(HIST_BUCKETS - 1);
                        histogram[b] += 1;
                    }
                }
            }

            columns.push(ColumnStats {
                name: cdef.name.clone(),
                ty: cdef.ty,
                null_count,
                distinct,
                min,
                max,
                mean,
                std,
                top_values: top,
                histogram,
            });
        }
        TableStats {
            table: table.name().to_string(),
            row_count: n,
            columns,
        }
    }

    pub fn column(&self, name: &str) -> Option<&ColumnStats> {
        self.columns.iter().find(|c| c.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;

    fn table() -> Table {
        let mut t = Table::new(
            "t",
            Schema::build(&[("x", ValueType::Int), ("s", ValueType::Str)]),
        );
        for i in 0..100 {
            let s = if i % 10 == 0 { "common" } else { "rare" };
            let x = if i == 50 { Value::Null } else { Value::Int(i) };
            t.push_row(&[x, Value::Str(s.into())]).unwrap();
        }
        t
    }

    #[test]
    fn basic_stats() {
        let s = TableStats::compute(&table());
        assert_eq!(s.row_count, 100);
        let x = s.column("x").unwrap();
        assert_eq!(x.null_count, 1);
        assert_eq!(x.distinct, 99);
        assert_eq!(x.min, Some(Value::Int(0)));
        assert_eq!(x.max, Some(Value::Int(99)));
        let mean = x.mean.unwrap();
        assert!((mean - (4950.0 - 50.0) / 99.0).abs() < 1e-9);

        let str_col = s.column("s").unwrap();
        assert_eq!(str_col.distinct, 2);
        assert_eq!(str_col.top_values[0].0, Value::Str("rare".into()));
        assert_eq!(str_col.top_values[0].1, 90);
        assert!(str_col.mean.is_none());
        assert!(str_col.histogram.is_empty());
    }

    #[test]
    fn range_selectivity_sane() {
        let s = TableStats::compute(&table());
        let x = s.column("x").unwrap();
        let all = x.range_selectivity(0.0, 99.0);
        assert!(
            (all - 1.0).abs() < 1e-9,
            "full range covers everything: {all}"
        );
        let half = x.range_selectivity(0.0, 49.0);
        assert!(half > 0.3 && half < 0.7, "half range ~ half: {half}");
        assert_eq!(x.range_selectivity(1000.0, 2000.0), 0.0);
    }

    #[test]
    fn empty_table() {
        let t = Table::new("e", Schema::build(&[("x", ValueType::Int)]));
        let s = TableStats::compute(&t);
        assert_eq!(s.row_count, 0);
        assert_eq!(s.columns[0].distinct, 0);
        assert!(s.columns[0].min.is_none());
        assert!(s.columns[0].mean.is_none());
    }
}
