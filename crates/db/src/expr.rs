//! Scalar expressions with SQL three-valued logic.
//!
//! Expressions are parsed with *named* column references
//! ([`Expr::Column`]); before execution they are bound against a row layout,
//! replacing names with flat [`Expr::Slot`] indices so evaluation is a cheap
//! array lookup.

use crate::error::{DbError, DbResult};
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

/// A (possibly table-qualified) column reference as written in a query.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ColRef {
    pub table: Option<String>,
    pub column: String,
}

impl ColRef {
    pub fn new(table: impl Into<String>, column: impl Into<String>) -> Self {
        ColRef {
            table: Some(table.into()),
            column: column.into(),
        }
    }

    pub fn bare(column: impl Into<String>) -> Self {
        ColRef {
            table: None,
            column: column.into(),
        }
    }
}

impl fmt::Display for ColRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.table {
            Some(t) => write!(f, "{t}.{}", self.column),
            None => write!(f, "{}", self.column),
        }
    }
}

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CmpOp {
    pub fn holds(self, ord: Ordering) -> bool {
        match self {
            CmpOp::Eq => ord == Ordering::Equal,
            CmpOp::Ne => ord != Ordering::Equal,
            CmpOp::Lt => ord == Ordering::Less,
            CmpOp::Le => ord != Ordering::Greater,
            CmpOp::Gt => ord == Ordering::Greater,
            CmpOp::Ge => ord != Ordering::Less,
        }
    }

    pub fn flip(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "<>",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        write!(f, "{s}")
    }
}

/// Arithmetic operators (numeric only).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ArithOp {
    Add,
    Sub,
    Mul,
    Div,
}

impl fmt::Display for ArithOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ArithOp::Add => "+",
            ArithOp::Sub => "-",
            ArithOp::Mul => "*",
            ArithOp::Div => "/",
        };
        write!(f, "{s}")
    }
}

/// A scalar expression tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Expr {
    /// Named column reference (pre-binding).
    Column(ColRef),
    /// Resolved flat index into the execution row (post-binding).
    Slot(usize),
    Literal(Value),
    Cmp {
        op: CmpOp,
        lhs: Box<Expr>,
        rhs: Box<Expr>,
    },
    Arith {
        op: ArithOp,
        lhs: Box<Expr>,
        rhs: Box<Expr>,
    },
    And(Box<Expr>, Box<Expr>),
    Or(Box<Expr>, Box<Expr>),
    Not(Box<Expr>),
    In {
        expr: Box<Expr>,
        list: Vec<Value>,
        negated: bool,
    },
    Between {
        expr: Box<Expr>,
        low: Box<Expr>,
        high: Box<Expr>,
        negated: bool,
    },
    /// SQL LIKE with `%` (any run) and `_` (any single char).
    Like {
        expr: Box<Expr>,
        pattern: String,
        negated: bool,
    },
    IsNull {
        expr: Box<Expr>,
        negated: bool,
    },
}

impl Expr {
    pub fn col(table: &str, column: &str) -> Expr {
        Expr::Column(ColRef::new(table, column))
    }

    pub fn bare(column: &str) -> Expr {
        Expr::Column(ColRef::bare(column))
    }

    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Literal(v.into())
    }

    pub fn cmp(op: CmpOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Cmp {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        }
    }

    pub fn eq(lhs: Expr, rhs: Expr) -> Expr {
        Expr::cmp(CmpOp::Eq, lhs, rhs)
    }

    pub fn and(lhs: Expr, rhs: Expr) -> Expr {
        Expr::And(Box::new(lhs), Box::new(rhs))
    }

    pub fn or(lhs: Expr, rhs: Expr) -> Expr {
        Expr::Or(Box::new(lhs), Box::new(rhs))
    }

    /// Conjoin a list of predicates (`None` for the empty list).
    pub fn conjunction(mut preds: Vec<Expr>) -> Option<Expr> {
        let first = if preds.is_empty() {
            return None;
        } else {
            preds.remove(0)
        };
        Some(preds.into_iter().fold(first, Expr::and))
    }

    /// Split a predicate into its top-level AND-ed conjuncts.
    pub fn split_conjuncts(self) -> Vec<Expr> {
        match self {
            Expr::And(a, b) => {
                let mut v = a.split_conjuncts();
                v.extend(b.split_conjuncts());
                v
            }
            other => vec![other],
        }
    }

    /// Replace every named column reference using `resolve`, producing an
    /// executable expression over flat row slots.
    pub fn bind(&self, resolve: &dyn Fn(&ColRef) -> DbResult<usize>) -> DbResult<Expr> {
        Ok(match self {
            Expr::Column(c) => Expr::Slot(resolve(c)?),
            Expr::Slot(s) => Expr::Slot(*s),
            Expr::Literal(v) => Expr::Literal(v.clone()),
            Expr::Cmp { op, lhs, rhs } => Expr::Cmp {
                op: *op,
                lhs: Box::new(lhs.bind(resolve)?),
                rhs: Box::new(rhs.bind(resolve)?),
            },
            Expr::Arith { op, lhs, rhs } => Expr::Arith {
                op: *op,
                lhs: Box::new(lhs.bind(resolve)?),
                rhs: Box::new(rhs.bind(resolve)?),
            },
            Expr::And(a, b) => Expr::And(Box::new(a.bind(resolve)?), Box::new(b.bind(resolve)?)),
            Expr::Or(a, b) => Expr::Or(Box::new(a.bind(resolve)?), Box::new(b.bind(resolve)?)),
            Expr::Not(e) => Expr::Not(Box::new(e.bind(resolve)?)),
            Expr::In {
                expr,
                list,
                negated,
            } => Expr::In {
                expr: Box::new(expr.bind(resolve)?),
                list: list.clone(),
                negated: *negated,
            },
            Expr::Between {
                expr,
                low,
                high,
                negated,
            } => Expr::Between {
                expr: Box::new(expr.bind(resolve)?),
                low: Box::new(low.bind(resolve)?),
                high: Box::new(high.bind(resolve)?),
                negated: *negated,
            },
            Expr::Like {
                expr,
                pattern,
                negated,
            } => Expr::Like {
                expr: Box::new(expr.bind(resolve)?),
                pattern: pattern.clone(),
                negated: *negated,
            },
            Expr::IsNull { expr, negated } => Expr::IsNull {
                expr: Box::new(expr.bind(resolve)?),
                negated: *negated,
            },
        })
    }

    /// Collect every named column reference in the tree.
    pub fn collect_columns(&self, out: &mut Vec<ColRef>) {
        match self {
            Expr::Column(c) => out.push(c.clone()),
            Expr::Slot(_) | Expr::Literal(_) => {}
            Expr::Cmp { lhs, rhs, .. } | Expr::Arith { lhs, rhs, .. } => {
                lhs.collect_columns(out);
                rhs.collect_columns(out);
            }
            Expr::And(a, b) | Expr::Or(a, b) => {
                a.collect_columns(out);
                b.collect_columns(out);
            }
            Expr::Not(e) | Expr::In { expr: e, .. } | Expr::Like { expr: e, .. } => {
                e.collect_columns(out)
            }
            Expr::Between {
                expr, low, high, ..
            } => {
                expr.collect_columns(out);
                low.collect_columns(out);
                high.collect_columns(out);
            }
            Expr::IsNull { expr, .. } => expr.collect_columns(out),
        }
    }

    /// Evaluate against a flat row. Logical results use SQL 3VL: `Null`
    /// means *unknown*. A WHERE clause keeps a row iff the result is
    /// `Bool(true)`.
    pub fn eval(&self, row: &[Value]) -> DbResult<Value> {
        Ok(match self {
            Expr::Column(c) => {
                return Err(DbError::InvalidQuery(format!(
                    "unbound column reference {c} at evaluation time"
                )))
            }
            Expr::Slot(i) => row
                .get(*i)
                .cloned()
                .ok_or_else(|| DbError::ShapeMismatch(format!("slot {i} out of row")))?,
            Expr::Literal(v) => v.clone(),
            Expr::Cmp { op, lhs, rhs } => {
                let l = lhs.eval(row)?;
                let r = rhs.eval(row)?;
                match l.sql_cmp(&r) {
                    Some(ord) => Value::Bool(op.holds(ord)),
                    None => Value::Null,
                }
            }
            Expr::Arith { op, lhs, rhs } => {
                let l = lhs.eval(row)?;
                let r = rhs.eval(row)?;
                match (l.as_f64(), r.as_f64()) {
                    (Some(a), Some(b)) => {
                        let out = match op {
                            ArithOp::Add => a + b,
                            ArithOp::Sub => a - b,
                            ArithOp::Mul => a * b,
                            ArithOp::Div => {
                                if b == 0.0 {
                                    return Ok(Value::Null); // SQL-ish: guard div by zero
                                }
                                a / b
                            }
                        };
                        // Preserve integer typing when both inputs are ints
                        // and the result is integral.
                        match (&l, &r) {
                            (Value::Int(_), Value::Int(_)) if out.fract() == 0.0 => {
                                Value::Int(out as i64)
                            }
                            _ => Value::Float(out),
                        }
                    }
                    _ => Value::Null,
                }
            }
            Expr::And(a, b) => {
                let l = a.eval(row)?;
                let r = b.eval(row)?;
                three_valued_and(&l, &r)
            }
            Expr::Or(a, b) => {
                let l = a.eval(row)?;
                let r = b.eval(row)?;
                three_valued_or(&l, &r)
            }
            Expr::Not(e) => match e.eval(row)? {
                Value::Bool(b) => Value::Bool(!b),
                Value::Null => Value::Null,
                other => {
                    return Err(DbError::TypeMismatch {
                        expected: "BOOL".into(),
                        found: format!("{other}"),
                    })
                }
            },
            Expr::In {
                expr,
                list,
                negated,
            } => {
                let v = expr.eval(row)?;
                if v.is_null() {
                    return Ok(Value::Null);
                }
                let mut found = false;
                let mut saw_null = false;
                for item in list {
                    match v.sql_cmp(item) {
                        Some(Ordering::Equal) => {
                            found = true;
                            break;
                        }
                        None if item.is_null() => saw_null = true,
                        _ => {}
                    }
                }
                if found {
                    Value::Bool(!negated)
                } else if saw_null {
                    Value::Null
                } else {
                    Value::Bool(*negated)
                }
            }
            Expr::Between {
                expr,
                low,
                high,
                negated,
            } => {
                let v = expr.eval(row)?;
                let lo = low.eval(row)?;
                let hi = high.eval(row)?;
                match (v.sql_cmp(&lo), v.sql_cmp(&hi)) {
                    (Some(a), Some(b)) => {
                        let inside = a != Ordering::Less && b != Ordering::Greater;
                        Value::Bool(inside != *negated)
                    }
                    _ => Value::Null,
                }
            }
            Expr::Like {
                expr,
                pattern,
                negated,
            } => {
                let v = expr.eval(row)?;
                match v {
                    Value::Null => Value::Null,
                    Value::Str(s) => Value::Bool(like_match(&s, pattern) != *negated),
                    other => {
                        return Err(DbError::TypeMismatch {
                            expected: "TEXT".into(),
                            found: format!("{other}"),
                        })
                    }
                }
            }
            Expr::IsNull { expr, negated } => {
                let v = expr.eval(row)?;
                Value::Bool(v.is_null() != *negated)
            }
        })
    }

    /// Predicate evaluation: `true` iff the expression evaluates to
    /// `Bool(true)` (SQL WHERE semantics: NULL filters the row out).
    pub fn matches(&self, row: &[Value]) -> DbResult<bool> {
        Ok(matches!(self.eval(row)?, Value::Bool(true)))
    }
}

fn three_valued_and(l: &Value, r: &Value) -> Value {
    match (l.as_bool(), r.as_bool()) {
        (Some(false), _) | (_, Some(false)) => Value::Bool(false),
        (Some(true), Some(true)) => Value::Bool(true),
        _ => Value::Null,
    }
}

fn three_valued_or(l: &Value, r: &Value) -> Value {
    match (l.as_bool(), r.as_bool()) {
        (Some(true), _) | (_, Some(true)) => Value::Bool(true),
        (Some(false), Some(false)) => Value::Bool(false),
        _ => Value::Null,
    }
}

/// SQL LIKE matcher: `%` matches any run (including empty), `_` one char.
/// Case-sensitive, iterative two-pointer algorithm (no backtracking blowup).
pub fn like_match(s: &str, pattern: &str) -> bool {
    let s: Vec<char> = s.chars().collect();
    let p: Vec<char> = pattern.chars().collect();
    let (mut si, mut pi) = (0usize, 0usize);
    let (mut star_p, mut star_s) = (usize::MAX, 0usize);
    while si < s.len() {
        if pi < p.len() && (p[pi] == '_' || p[pi] == s[si]) {
            si += 1;
            pi += 1;
        } else if pi < p.len() && p[pi] == '%' {
            star_p = pi;
            star_s = si;
            pi += 1;
        } else if star_p != usize::MAX {
            // Backtrack: let the last % swallow one more char.
            pi = star_p + 1;
            star_s += 1;
            si = star_s;
        } else {
            return false;
        }
    }
    while pi < p.len() && p[pi] == '%' {
        pi += 1;
    }
    pi == p.len()
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Column(c) => write!(f, "{c}"),
            Expr::Slot(i) => write!(f, "${i}"),
            Expr::Literal(v) => write!(f, "{v}"),
            Expr::Cmp { op, lhs, rhs } => write!(f, "{lhs} {op} {rhs}"),
            Expr::Arith { op, lhs, rhs } => write!(f, "({lhs} {op} {rhs})"),
            Expr::And(a, b) => write!(f, "({a} AND {b})"),
            Expr::Or(a, b) => write!(f, "({a} OR {b})"),
            Expr::Not(e) => write!(f, "NOT ({e})"),
            Expr::In {
                expr,
                list,
                negated,
            } => {
                write!(f, "{expr} {}IN (", if *negated { "NOT " } else { "" })?;
                for (i, v) in list.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, ")")
            }
            Expr::Between {
                expr,
                low,
                high,
                negated,
            } => write!(
                f,
                "{expr} {}BETWEEN {low} AND {high}",
                if *negated { "NOT " } else { "" }
            ),
            Expr::Like {
                expr,
                pattern,
                negated,
            } => write!(
                f,
                "{expr} {}LIKE '{}'",
                if *negated { "NOT " } else { "" },
                pattern.replace('\'', "''")
            ),
            Expr::IsNull { expr, negated } => {
                write!(f, "{expr} IS {}NULL", if *negated { "NOT " } else { "" })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn slot(i: usize) -> Expr {
        Expr::Slot(i)
    }

    #[test]
    fn cmp_with_nulls_is_unknown() {
        let e = Expr::cmp(CmpOp::Eq, slot(0), Expr::lit(1));
        assert_eq!(e.eval(&[Value::Null]).unwrap(), Value::Null);
        assert!(!e.matches(&[Value::Null]).unwrap());
        assert!(e.matches(&[Value::Int(1)]).unwrap());
    }

    #[test]
    fn three_valued_logic_tables() {
        let t = Value::Bool(true);
        let fl = Value::Bool(false);
        let n = Value::Null;
        assert_eq!(three_valued_and(&n, &fl), Value::Bool(false));
        assert_eq!(three_valued_and(&n, &t), Value::Null);
        assert_eq!(three_valued_or(&n, &t), Value::Bool(true));
        assert_eq!(three_valued_or(&n, &fl), Value::Null);
    }

    #[test]
    fn in_list_semantics() {
        let e = Expr::In {
            expr: Box::new(slot(0)),
            list: vec![Value::Int(1), Value::Int(2)],
            negated: false,
        };
        assert!(e.matches(&[Value::Int(2)]).unwrap());
        assert!(!e.matches(&[Value::Int(3)]).unwrap());
        // NULL in the list makes a miss unknown, not false.
        let e2 = Expr::In {
            expr: Box::new(slot(0)),
            list: vec![Value::Int(1), Value::Null],
            negated: false,
        };
        assert_eq!(e2.eval(&[Value::Int(3)]).unwrap(), Value::Null);
        assert!(e2.matches(&[Value::Int(1)]).unwrap());
    }

    #[test]
    fn between_and_negation() {
        let e = Expr::Between {
            expr: Box::new(slot(0)),
            low: Box::new(Expr::lit(10)),
            high: Box::new(Expr::lit(20)),
            negated: false,
        };
        assert!(e.matches(&[Value::Int(10)]).unwrap());
        assert!(e.matches(&[Value::Int(20)]).unwrap());
        assert!(!e.matches(&[Value::Int(21)]).unwrap());
        let ne = Expr::Between {
            expr: Box::new(slot(0)),
            low: Box::new(Expr::lit(10)),
            high: Box::new(Expr::lit(20)),
            negated: true,
        };
        assert!(ne.matches(&[Value::Int(21)]).unwrap());
    }

    #[test]
    fn like_patterns() {
        assert!(like_match("Star Wars", "Star%"));
        assert!(like_match("Star Wars", "%Wars"));
        assert!(like_match("Star Wars", "%a%"));
        assert!(like_match("abc", "a_c"));
        assert!(!like_match("abc", "a_d"));
        assert!(like_match("", "%"));
        assert!(!like_match("", "_"));
        assert!(like_match("aaab", "%ab"));
        assert!(!like_match("abc", "abcd"));
        assert!(like_match("mississippi", "%iss%pi"));
    }

    #[test]
    fn arithmetic_typing_and_div_zero() {
        let add = Expr::Arith {
            op: ArithOp::Add,
            lhs: Box::new(Expr::lit(2)),
            rhs: Box::new(Expr::lit(3)),
        };
        assert_eq!(add.eval(&[]).unwrap(), Value::Int(5));
        let div0 = Expr::Arith {
            op: ArithOp::Div,
            lhs: Box::new(Expr::lit(1)),
            rhs: Box::new(Expr::lit(0)),
        };
        assert_eq!(div0.eval(&[]).unwrap(), Value::Null);
        let fdiv = Expr::Arith {
            op: ArithOp::Div,
            lhs: Box::new(Expr::lit(3)),
            rhs: Box::new(Expr::lit(2)),
        };
        assert_eq!(fdiv.eval(&[]).unwrap(), Value::Float(1.5));
    }

    #[test]
    fn bind_resolves_columns() {
        let e = Expr::eq(Expr::col("t", "a"), Expr::lit(1));
        let bound = e
            .bind(&|c: &ColRef| {
                assert_eq!(c.column, "a");
                Ok(4)
            })
            .unwrap();
        let mut row = vec![Value::Null; 5];
        row[4] = Value::Int(1);
        assert!(bound.matches(&row).unwrap());
    }

    #[test]
    fn split_and_conjunction_roundtrip() {
        let a = Expr::eq(slot(0), Expr::lit(1));
        let b = Expr::eq(slot(1), Expr::lit(2));
        let c = Expr::eq(slot(2), Expr::lit(3));
        let all = Expr::conjunction(vec![a.clone(), b.clone(), c.clone()]).unwrap();
        let parts = all.split_conjuncts();
        assert_eq!(parts, vec![a, b, c]);
        assert!(Expr::conjunction(vec![]).is_none());
    }

    #[test]
    fn is_null_checks() {
        let e = Expr::IsNull {
            expr: Box::new(slot(0)),
            negated: false,
        };
        assert!(e.matches(&[Value::Null]).unwrap());
        assert!(!e.matches(&[Value::Int(0)]).unwrap());
    }

    #[test]
    fn unbound_column_errors_at_eval() {
        let e = Expr::bare("x");
        assert!(e.eval(&[]).is_err());
    }
}
