//! Query execution: predicate pushdown, hash joins, residual filters,
//! projection, aggregation, DISTINCT, ORDER BY and LIMIT.
//!
//! Intermediate join state is a vector of *row-id tuples* (one row id per
//! bound table), never materialised rows — values are fetched lazily from the
//! columnar storage. This keeps joins cheap and makes result **lineage**
//! (which base rows produced each result row) fall out for free; ASQP-RL's
//! pre-processing builds its RL action space from exactly that lineage.
//!
//! Two scan/probe implementations share this pipeline (see [`ExecMode`]):
//! the default **vectorized** path compiles pushed-down conjuncts into typed
//! column kernels evaluated over selection vectors on ~2048-row morsels with
//! zone-map pruning (the private `vector` module), and shards scans and
//! hash-join probes
//! across crossbeam scoped threads with deterministic in-order concatenation;
//! the **row-oriented** path materialises one `Row` per candidate and is kept
//! as a correctness oracle and benchmark baseline.

use crate::catalog::Database;
use crate::error::{DbError, DbResult};
use crate::expr::{ColRef, Expr};
use crate::optimizer::{self, OptimizerMode, PlanCacheStatus};
use crate::query::{Query, SelectItem, TableRef};
use crate::table::Table;
use crate::value::{canonical_f64_bits, Row, Value};
use asqp_telemetry as telemetry;
use std::collections::HashMap;

mod aggregate;
mod vector;

/// Which scan/probe implementation the executor uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// Typed column kernels over selection vectors on morsels, zone-map
    /// pruning, sharded scans/probes. The default.
    Vectorized,
    /// Row-at-a-time predicate evaluation over materialised rows; retained
    /// as a correctness oracle and as the benchmark baseline.
    RowOriented,
}

/// Executor tuning knobs, passed to [`execute_with_options`].
#[derive(Debug, Clone, Copy)]
pub struct ExecOptions {
    pub mode: ExecMode,
    /// Worker count for morsel scans and join probes (1 = sequential).
    /// Results are identical for any value: shards are contiguous ranges
    /// concatenated in submission order.
    pub shards: usize,
    /// How the join order is chosen (cost-based planning vs. the legacy
    /// greedy heuristic). Orthogonal to `mode`: either scan/probe
    /// implementation runs either plan.
    pub optimizer: OptimizerMode,
    /// Consult the database's shared plan cache when planning (only
    /// meaningful with [`OptimizerMode::CostBased`]). Defaults to the
    /// process-wide `ASQP_PLAN_CACHE` setting.
    pub plan_cache: bool,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions {
            mode: ExecMode::Vectorized,
            shards: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            optimizer: OptimizerMode::CostBased,
            plan_cache: crate::plan_cache::cache_enabled_default(),
        }
    }
}

impl ExecOptions {
    /// The legacy row-at-a-time configuration (sequential).
    pub fn row_oriented() -> Self {
        ExecOptions {
            mode: ExecMode::RowOriented,
            shards: 1,
            ..ExecOptions::default()
        }
    }
}

/// Probe sides smaller than this stay sequential regardless of `shards`.
const PARALLEL_PROBE_MIN: usize = 4096;

/// Provenance of one result row: `(binding index, base-table row id)` for
/// every table bound in the FROM clause, in FROM order.
pub type Lineage = Vec<usize>;

/// Plain query result.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultSet {
    /// Output column names (qualified where the query qualified them).
    pub columns: Vec<String>,
    pub rows: Vec<Row>,
}

impl ResultSet {
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

/// Query result plus lineage metadata.
#[derive(Debug, Clone)]
pub struct QueryOutput {
    pub result: ResultSet,
    /// Per FROM-clause binding: the table's catalog name.
    pub binding_tables: Vec<String>,
    /// Per result row: the base row id in each binding's table, aligned with
    /// `binding_tables`. Empty when the query aggregates (no tuple-level
    /// provenance exists for aggregated outputs).
    pub lineage: Vec<Lineage>,
    /// How this execution was planned and what it actually processed
    /// (EXPLAIN ANALYZE renders estimated vs. actual from this).
    pub trace: ExecTrace,
}

/// Observed execution facts, aligned with the optimizer's estimates.
#[derive(Debug, Clone, Default)]
pub struct ExecTrace {
    /// Whether the plan came from the shared plan cache.
    pub cache: PlanCacheStatus,
    /// Binding indices in the order they were actually joined.
    pub join_order: Vec<usize>,
    /// Rows surviving each binding's filtered scan (FROM order).
    pub scan_rows: Vec<usize>,
    /// Intermediate size after each join step, before residual filters
    /// (aligned with `join_order[1..]`).
    pub join_rows: Vec<usize>,
    /// The optimizer's estimates (empty in heuristic mode), FROM order /
    /// join-step order respectively.
    pub est_scan_rows: Vec<f64>,
    pub est_join_rows: Vec<f64>,
}

/// One table bound in the FROM clause, with its slot offset in the flat
/// execution row layout.
struct Binding<'a> {
    name: String,
    table: &'a Table,
    offset: usize,
}

/// Flat row layout over all FROM bindings.
struct Layout<'a> {
    bindings: Vec<Binding<'a>>,
    total_slots: usize,
    /// Precomputed `slot → (binding index, local column index)`, replacing a
    /// per-fetch linear scan over the bindings.
    slot_map: Vec<(usize, usize)>,
}

impl<'a> Layout<'a> {
    fn new(db: &'a Database, from: &[TableRef]) -> DbResult<Self> {
        if from.is_empty() {
            return Err(DbError::InvalidQuery("FROM clause is empty".into()));
        }
        let mut bindings = Vec::with_capacity(from.len());
        let mut slot_map = Vec::new();
        let mut offset = 0;
        for tref in from {
            let name = tref.binding().to_string();
            if bindings.iter().any(|b: &Binding| b.name == name) {
                return Err(DbError::Duplicate(format!("table binding {name}")));
            }
            let table = db.table(&tref.table)?;
            let bi = bindings.len();
            slot_map.extend((0..table.schema().len()).map(|c| (bi, c)));
            bindings.push(Binding {
                name,
                table,
                offset,
            });
            offset += table.schema().len();
        }
        Ok(Layout {
            bindings,
            total_slots: offset,
            slot_map,
        })
    }

    /// Resolve a (possibly unqualified) column reference to a flat slot.
    fn resolve(&self, c: &ColRef) -> DbResult<usize> {
        match &c.table {
            Some(t) => {
                let b = self
                    .bindings
                    .iter()
                    .find(|b| b.name == *t)
                    .ok_or_else(|| DbError::UnknownTable(t.clone()))?;
                let idx = b.table.schema().require(&c.column)?;
                Ok(b.offset + idx)
            }
            None => {
                let mut hit: Option<usize> = None;
                for b in &self.bindings {
                    if let Some(idx) = b.table.schema().index_of(&c.column) {
                        if hit.is_some() {
                            return Err(DbError::AmbiguousColumn(c.column.clone()));
                        }
                        hit = Some(b.offset + idx);
                    }
                }
                hit.ok_or_else(|| DbError::UnknownColumn(c.column.clone()))
            }
        }
    }

    /// Which binding owns a flat slot, and the local column index. O(1)
    /// lookup in the precomputed slot table.
    fn slot_owner(&self, slot: usize) -> (usize, usize) {
        self.slot_map[slot]
    }

    /// Qualified output name for a flat slot.
    fn slot_name(&self, slot: usize) -> String {
        let (b, c) = self.slot_owner(slot);
        format!(
            "{}.{}",
            self.bindings[b].name,
            self.bindings[b].table.schema().column(c).name
        )
    }

    /// Fetch the value of `slot` for the intermediate row-id tuple `ids`
    /// (ids aligned with `self.bindings`).
    fn fetch(&self, ids: &[usize], slot: usize) -> Value {
        let (b, c) = self.slot_owner(slot);
        self.bindings[b].table.column(c).get(ids[b])
    }
}

/// Slots an expression reads, mapped to the set of bindings it touches.
fn expr_bindings(layout: &Layout, e: &Expr, slots_out: &mut Vec<usize>) -> Vec<usize> {
    collect_slots(e, slots_out);
    let mut bs: Vec<usize> = slots_out.iter().map(|&s| layout.slot_owner(s).0).collect();
    bs.sort_unstable();
    bs.dedup();
    bs
}

fn collect_slots(e: &Expr, out: &mut Vec<usize>) {
    match e {
        Expr::Slot(s) => out.push(*s),
        Expr::Column(_) | Expr::Literal(_) => {}
        Expr::Cmp { lhs, rhs, .. } | Expr::Arith { lhs, rhs, .. } => {
            collect_slots(lhs, out);
            collect_slots(rhs, out);
        }
        Expr::And(a, b) | Expr::Or(a, b) => {
            collect_slots(a, out);
            collect_slots(b, out);
        }
        Expr::Not(x) | Expr::In { expr: x, .. } | Expr::Like { expr: x, .. } => {
            collect_slots(x, out)
        }
        Expr::Between {
            expr, low, high, ..
        } => {
            collect_slots(expr, out);
            collect_slots(low, out);
            collect_slots(high, out);
        }
        Expr::IsNull { expr, .. } => collect_slots(expr, out),
    }
}

/// Rewrite a bound single-binding expression so its slots are local to that
/// binding's table (for pushdown scanning).
fn localize(e: &Expr, offset: usize) -> Expr {
    match e {
        Expr::Slot(s) => Expr::Slot(s - offset),
        Expr::Column(c) => Expr::Column(c.clone()),
        Expr::Literal(v) => Expr::Literal(v.clone()),
        Expr::Cmp { op, lhs, rhs } => Expr::Cmp {
            op: *op,
            lhs: Box::new(localize(lhs, offset)),
            rhs: Box::new(localize(rhs, offset)),
        },
        Expr::Arith { op, lhs, rhs } => Expr::Arith {
            op: *op,
            lhs: Box::new(localize(lhs, offset)),
            rhs: Box::new(localize(rhs, offset)),
        },
        Expr::And(a, b) => Expr::And(Box::new(localize(a, offset)), Box::new(localize(b, offset))),
        Expr::Or(a, b) => Expr::Or(Box::new(localize(a, offset)), Box::new(localize(b, offset))),
        Expr::Not(x) => Expr::Not(Box::new(localize(x, offset))),
        Expr::In {
            expr,
            list,
            negated,
        } => Expr::In {
            expr: Box::new(localize(expr, offset)),
            list: list.clone(),
            negated: *negated,
        },
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => Expr::Between {
            expr: Box::new(localize(expr, offset)),
            low: Box::new(localize(low, offset)),
            high: Box::new(localize(high, offset)),
            negated: *negated,
        },
        Expr::Like {
            expr,
            pattern,
            negated,
        } => Expr::Like {
            expr: Box::new(localize(expr, offset)),
            pattern: pattern.clone(),
            negated: *negated,
        },
        Expr::IsNull { expr, negated } => Expr::IsNull {
            expr: Box::new(localize(expr, offset)),
            negated: *negated,
        },
    }
}

/// Scan one table, returning row ids that pass the (localized) predicate.
/// Fetches only the slots the predicate references (projection pruning) and
/// stops after `limit` passing rows (limit pushdown).
fn filtered_scan(table: &Table, pred: Option<&Expr>, limit: Option<usize>) -> DbResult<Vec<usize>> {
    let n = table.row_count();
    let cap = limit.unwrap_or(usize::MAX);
    let mut out = Vec::new();
    match pred {
        None => out.extend(0..n.min(cap)),
        Some(p) => {
            let mut slots = Vec::new();
            collect_slots(p, &mut slots);
            slots.sort_unstable();
            slots.dedup();
            // Sparse row over just the referenced slots.
            let mut row: Row = vec![Value::Null; table.schema().len()];
            for rid in 0..n {
                for &s in &slots {
                    row[s] = table.value(rid, s);
                }
                if p.matches(&row)? {
                    out.push(rid);
                    if out.len() >= cap {
                        break;
                    }
                }
            }
        }
    }
    Ok(out)
}

/// Equi-join condition resolved to flat slots.
struct BoundJoin {
    left_slot: usize,
    right_slot: usize,
    left_binding: usize,
    right_binding: usize,
}

/// Execute a query, discarding lineage.
pub fn execute(db: &Database, query: &Query) -> DbResult<ResultSet> {
    Ok(execute_with_lineage(db, query)?.result)
}

/// Execute a query, keeping per-row lineage for non-aggregate queries.
/// Uses the default (vectorized) executor configuration.
pub fn execute_with_lineage(db: &Database, query: &Query) -> DbResult<QueryOutput> {
    execute_with_options(db, query, ExecOptions::default())
}

/// Execute with an explicit executor configuration. All modes produce
/// identical results (rows, order, lineage); see [`ExecMode`].
pub fn execute_with_options(
    db: &Database,
    query: &Query,
    opts: ExecOptions,
) -> DbResult<QueryOutput> {
    // Telemetry is per-stage, never per-row: with no recorder installed
    // each emission below is one relaxed atomic load.
    let _exec_span = telemetry::span("db.execute");
    let layout = Layout::new(db, &query.from)?;
    let resolve = |c: &ColRef| layout.resolve(c);

    // --- Bind predicate and classify conjuncts --------------------------
    let mut single: Vec<Vec<Expr>> = (0..layout.bindings.len()).map(|_| Vec::new()).collect();
    let mut residual: Vec<(Expr, Vec<usize>)> = Vec::new();
    if let Some(pred) = &query.predicate {
        let bound = pred.bind(&resolve)?;
        for conj in bound.split_conjuncts() {
            let mut slots = Vec::new();
            let bs = expr_bindings(&layout, &conj, &mut slots);
            match bs.len() {
                0 => residual.push((conj, bs)), // constant predicate
                1 => single[bs[0]].push(conj),
                _ => residual.push((conj, bs)),
            }
        }
    }

    // --- Bind join conditions -------------------------------------------
    let mut joins: Vec<BoundJoin> = Vec::with_capacity(query.joins.len());
    for j in &query.joins {
        let ls = layout.resolve(&j.left)?;
        let rs = layout.resolve(&j.right)?;
        let (lb, _) = layout.slot_owner(ls);
        let (rb, _) = layout.slot_owner(rs);
        if lb == rb {
            // Self-condition within one table: treat as a pushed filter.
            let e = Expr::eq(Expr::Slot(ls), Expr::Slot(rs));
            single[lb].push(localize(&e, layout.bindings[lb].offset));
            continue;
        }
        joins.push(BoundJoin {
            left_slot: ls,
            right_slot: rs,
            left_binding: lb,
            right_binding: rb,
        });
    }

    // --- Plan ------------------------------------------------------------
    // Cost-based planning happens on the *unbound* query (the optimizer
    // re-derives conjunct classification itself, which is what makes cached
    // plans literal-independent). Heuristic mode skips planning entirely.
    let planned = match opts.optimizer {
        OptimizerMode::CostBased => Some(optimizer::plan_query(db, query, opts.plan_cache)?),
        OptimizerMode::Heuristic => None,
    };
    // Limit pushdown is only ever planned for single-table queries whose
    // conjuncts all push down; the guard is belt-and-braces for cached plans.
    let scan_limit = if layout.bindings.len() == 1 {
        planned.as_ref().and_then(|p| p.scan_limit)
    } else {
        None
    };

    // --- Filtered scans (predicate pushdown) ----------------------------
    let mut scans: Vec<Vec<usize>> = Vec::with_capacity(layout.bindings.len());
    {
        let _scan_span = telemetry::span("db.exec.scan");
        for (i, b) in layout.bindings.iter().enumerate() {
            let local: Vec<Expr> = single[i].iter().map(|e| localize(e, b.offset)).collect();
            let scan = match opts.mode {
                ExecMode::Vectorized => {
                    vector::filtered_scan_vectorized(b.table, &local, opts.shards, scan_limit)?
                }
                ExecMode::RowOriented => {
                    filtered_scan(b.table, Expr::conjunction(local).as_ref(), scan_limit)?
                }
            };
            scans.push(scan);
        }
        if telemetry::enabled() {
            telemetry::counter(
                "db.scan.rows_in",
                layout
                    .bindings
                    .iter()
                    .map(|b| b.table.row_count() as u64)
                    .sum(),
            );
            telemetry::counter(
                "db.scan.rows_out",
                scans.iter().map(|s| s.len() as u64).sum(),
            );
        }
    }

    // --- Join ------------------------------------------------------------
    // Intermediate rows are row-id tuples aligned with layout.bindings;
    // usize::MAX marks a binding not yet joined. The join order comes from
    // the cost-based plan when one exists (and is a valid permutation —
    // cached plans are re-validated here too), else from the legacy greedy
    // smallest-scan heuristic.
    const UNSET: usize = usize::MAX;
    let nb = layout.bindings.len();
    let scan_lens: Vec<usize> = scans.iter().map(|s| s.len()).collect();
    let order: Vec<usize> = planned
        .as_ref()
        .map(|p| p.join_order.clone())
        .filter(|o| is_permutation(o, nb))
        .unwrap_or_else(|| greedy_order(&scan_lens, &joins));
    let mut joined = vec![false; nb];
    let start = order[0];
    let mut inter: Vec<Vec<usize>> = scans[start]
        .iter()
        .map(|&rid| {
            let mut t = vec![UNSET; nb];
            t[start] = rid;
            t
        })
        .collect();
    joined[start] = true;
    let mut remaining_joins: Vec<BoundJoin> = joins;
    let mut pending_residual = residual;
    let mut join_rows: Vec<usize> = Vec::with_capacity(nb.saturating_sub(1));

    let join_span = if nb > 1 {
        Some(telemetry::span("db.exec.join"))
    } else {
        None
    };
    for &next in order.iter().skip(1) {
        // Conditions linking `next` to the joined set (probe side keys from
        // the intermediate, build side keys from `next`).
        let mut link: Vec<(usize, usize)> = Vec::new(); // (probe slot, build slot)
        remaining_joins.retain(|j| {
            let takes = (j.left_binding == next && joined[j.right_binding])
                || (j.right_binding == next && joined[j.left_binding]);
            if takes {
                if j.left_binding == next {
                    link.push((j.right_slot, j.left_slot));
                } else {
                    link.push((j.left_slot, j.right_slot));
                }
            }
            !takes
        });

        let b = &layout.bindings[next];
        if link.is_empty() {
            // Cartesian product with the filtered scan of `next`.
            let mut out = Vec::with_capacity(inter.len().saturating_mul(scans[next].len()));
            for t in &inter {
                for &rid in &scans[next] {
                    let mut nt = t.clone();
                    nt[next] = rid;
                    out.push(nt);
                }
            }
            inter = out;
        } else {
            // Hash join: build on `next`'s filtered rows, probe the
            // intermediate (sharded when large and the mode allows it).
            let probe_shards =
                if opts.mode == ExecMode::Vectorized && inter.len() >= PARALLEL_PROBE_MIN {
                    opts.shards
                } else {
                    1
                };
            let numeric = |col: &crate::column::Column| {
                matches!(
                    col.data(),
                    crate::column::ColumnData::Int(_) | crate::column::ColumnData::Float(_)
                )
            };
            let single_numeric_key = opts.mode == ExecMode::Vectorized && link.len() == 1 && {
                let (ps, bs) = link[0];
                let (pb, pc) = layout.slot_owner(ps);
                let bc = layout.slot_owner(bs).1;
                numeric(layout.bindings[pb].table.column(pc)) && numeric(b.table.column(bc))
            };
            if single_numeric_key {
                // Fast path: key on the canonical f64 bit pattern, which
                // matches Value's Eq/Hash for numeric values exactly.
                let (ps, bs) = link[0];
                let (pb, pc) = layout.slot_owner(ps);
                let bc = layout.slot_owner(bs).1;
                let build_col = b.table.column(bc);
                let mut hash: HashMap<u64, Vec<usize>> = HashMap::with_capacity(scans[next].len());
                for &rid in &scans[next] {
                    if let Some(v) = build_col.get_f64(rid) {
                        hash.entry(canonical_f64_bits(v)).or_default().push(rid);
                    }
                }
                inter = vector::probe_numeric(&layout, &inter, &hash, pb, pc, next, probe_shards)?;
            } else {
                let build_local: Vec<usize> = link
                    .iter()
                    .map(|&(_, bs)| layout.slot_owner(bs).1)
                    .collect();
                let mut hash: HashMap<Vec<Value>, Vec<usize>> =
                    HashMap::with_capacity(scans[next].len());
                for &rid in &scans[next] {
                    let key: Vec<Value> = build_local
                        .iter()
                        .map(|&c| b.table.column(c).get(rid))
                        .collect();
                    if key.iter().any(Value::is_null) {
                        continue; // NULL never equi-joins
                    }
                    hash.entry(key).or_default().push(rid);
                }
                inter = vector::probe_general(&layout, &inter, &hash, &link, next, probe_shards)?;
            }
        }
        joined[next] = true;
        join_rows.push(inter.len());

        // Apply residual conjuncts that are now fully bound.
        let ready: Vec<Expr> = {
            let mut keep = Vec::new();
            let mut ready = Vec::new();
            for (e, bs) in pending_residual.drain(..) {
                if bs.iter().all(|&bi| joined[bi]) {
                    ready.push(e);
                } else {
                    keep.push((e, bs));
                }
            }
            pending_residual = keep;
            ready
        };
        if !ready.is_empty() {
            let pred = Expr::conjunction(ready).expect("non-empty");
            inter = filter_intermediate(&layout, inter, &pred)?;
        }
    }

    if nb > 1 && telemetry::enabled() {
        telemetry::counter("db.join.rows_out", inter.len() as u64);
    }
    drop(join_span);

    // Constant/zero-binding residuals (e.g. `1 = 0`).
    if !pending_residual.is_empty() {
        let pred =
            Expr::conjunction(pending_residual.into_iter().map(|(e, _)| e).collect()).unwrap();
        inter = filter_intermediate(&layout, inter, &pred)?;
    }

    let trace = ExecTrace {
        cache: planned.as_ref().map(|p| p.cache).unwrap_or_default(),
        join_order: order,
        scan_rows: scan_lens,
        join_rows,
        est_scan_rows: planned
            .as_ref()
            .map(|p| p.est_scan_rows.clone())
            .unwrap_or_default(),
        est_join_rows: planned.map(|p| p.est_join_rows).unwrap_or_default(),
    };

    // --- Aggregate or project -------------------------------------------
    if query.is_aggregate() {
        let _agg_span = telemetry::span("db.exec.aggregate");
        let result = aggregate::aggregate(&layout, &inter, query, &resolve)?;
        return Ok(QueryOutput {
            result,
            binding_tables: layout
                .bindings
                .iter()
                .map(|b| b.table.name().to_string())
                .collect(),
            lineage: Vec::new(),
            trace,
        });
    }

    // Projection slots and output names.
    let mut proj: Vec<usize> = Vec::new();
    let mut names: Vec<String> = Vec::new();
    for item in &query.select {
        match item {
            SelectItem::Star => {
                for s in 0..layout.total_slots {
                    proj.push(s);
                    names.push(layout.slot_name(s));
                }
            }
            SelectItem::Column(c) => {
                let s = layout.resolve(c)?;
                proj.push(s);
                names.push(c.to_string());
            }
            SelectItem::Aggregate(_) => unreachable!("handled above"),
        }
    }

    // ORDER BY keys resolved to flat slots.
    let order: Vec<(usize, bool)> = query
        .order_by
        .iter()
        .map(|k| Ok((layout.resolve(&k.column)?, k.desc)))
        .collect::<DbResult<_>>()?;

    if !order.is_empty() {
        let _sort_span = telemetry::span("db.exec.sort");
        let keys: Vec<Vec<Value>> = inter
            .iter()
            .map(|t| order.iter().map(|&(s, _)| layout.fetch(t, s)).collect())
            .collect();
        let mut idx: Vec<usize> = (0..inter.len()).collect();
        idx.sort_by(|&a, &b| {
            for (k, &(_, desc)) in order.iter().enumerate() {
                let ord = keys[a][k].cmp(&keys[b][k]);
                let ord = if desc { ord.reverse() } else { ord };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
        inter = idx.into_iter().map(|i| inter[i].clone()).collect();
    }

    // Project (+ DISTINCT + LIMIT with early exit when unordered).
    let _project_span = telemetry::span("db.exec.project");
    let limit = query.limit.unwrap_or(usize::MAX);
    let mut rows: Vec<Row> = Vec::new();
    let mut lineage: Vec<Lineage> = Vec::new();
    let mut seen: HashMap<Row, ()> = HashMap::new();
    for t in &inter {
        if rows.len() >= limit {
            break;
        }
        let row: Row = proj.iter().map(|&s| layout.fetch(t, s)).collect();
        if query.distinct {
            if seen.contains_key(&row) {
                continue;
            }
            seen.insert(row.clone(), ());
        }
        rows.push(row);
        lineage.push(t.clone());
    }
    telemetry::counter("db.rows_out", rows.len() as u64);

    Ok(QueryOutput {
        result: ResultSet {
            columns: names,
            rows,
        },
        binding_tables: layout
            .bindings
            .iter()
            .map(|b| b.table.name().to_string())
            .collect(),
        lineage,
        trace,
    })
}

/// Is `order` a permutation of `0..nb`? Cached plans are re-checked so a
/// corrupt or mismatched entry can never index out of bounds.
fn is_permutation(order: &[usize], nb: usize) -> bool {
    let mut seen = vec![false; nb];
    order.len() == nb
        && order
            .iter()
            .all(|&b| b < nb && !std::mem::replace(&mut seen[b], true))
}

/// The legacy greedy join order: start from the smallest filtered scan,
/// then always extend with the smallest *connected* binding (smallest
/// remaining binding as the cartesian fallback). A pure function of scan
/// sizes and join connectivity, replicating the selection the execution
/// loop used before cost-based planning existed.
fn greedy_order(scan_lens: &[usize], joins: &[BoundJoin]) -> Vec<usize> {
    let nb = scan_lens.len();
    let mut joined = vec![false; nb];
    let mut used = vec![false; joins.len()];
    let start = (0..nb).min_by_key(|&b| scan_lens[b]).unwrap_or(0);
    let mut order = vec![start];
    joined[start] = true;
    while order.len() < nb {
        let connected = |b: usize| {
            joins.iter().zip(&used).any(|(j, &u)| {
                !u && ((j.left_binding == b && joined[j.right_binding])
                    || (j.right_binding == b && joined[j.left_binding]))
            })
        };
        let next = (0..nb)
            .filter(|&b| !joined[b] && connected(b))
            .min_by_key(|&b| scan_lens[b])
            .or_else(|| {
                (0..nb)
                    .filter(|&b| !joined[b])
                    .min_by_key(|&b| scan_lens[b])
            });
        let Some(next) = next else { break };
        joined[next] = true;
        order.push(next);
        // A condition is consumed once both its endpoints are joined —
        // exactly when the execution loop's `retain` would take it.
        for (j, u) in joins.iter().zip(used.iter_mut()) {
            if !*u && joined[j.left_binding] && joined[j.right_binding] {
                *u = true;
            }
        }
    }
    order
}

fn filter_intermediate(
    layout: &Layout,
    inter: Vec<Vec<usize>>,
    pred: &Expr,
) -> DbResult<Vec<Vec<usize>>> {
    let mut slots = Vec::new();
    collect_slots(pred, &mut slots);
    slots.sort_unstable();
    slots.dedup();
    // Evaluate against a sparse flat row holding only the needed slots.
    let mut flat: Row = vec![Value::Null; layout.total_slots];
    let mut out = Vec::with_capacity(inter.len());
    for t in inter {
        for &s in &slots {
            flat[s] = layout.fetch(&t, s);
        }
        if pred.matches(&flat)? {
            out.push(t);
        }
    }
    Ok(out)
}

/// Reference executor: nested loops over full cartesian products with the
/// complete predicate applied at the end. Exponentially slow — used only as
/// a correctness oracle in tests and proptest properties.
pub fn execute_nested_loop(db: &Database, query: &Query) -> DbResult<ResultSet> {
    let layout = Layout::new(db, &query.from)?;
    let resolve = |c: &ColRef| layout.resolve(c);

    // Full predicate: WHERE plus all join conditions.
    let mut preds: Vec<Expr> = Vec::new();
    for j in &query.joins {
        preds.push(Expr::eq(
            Expr::Slot(layout.resolve(&j.left)?),
            Expr::Slot(layout.resolve(&j.right)?),
        ));
    }
    if let Some(p) = &query.predicate {
        preds.push(p.bind(&resolve)?);
    }
    let pred = Expr::conjunction(preds);

    // Cartesian product of all row ids.
    let nb = layout.bindings.len();
    let mut inter: Vec<Vec<usize>> = vec![vec![]];
    for b in 0..nb {
        let n = layout.bindings[b].table.row_count();
        let mut out = Vec::with_capacity(inter.len() * n.max(1));
        for t in &inter {
            for rid in 0..n {
                let mut nt = t.clone();
                nt.push(rid);
                out.push(nt);
            }
        }
        inter = out;
    }

    let mut flat: Row = vec![Value::Null; layout.total_slots];
    let mut kept: Vec<Vec<usize>> = Vec::new();
    for t in inter {
        for (s, v) in flat.iter_mut().enumerate() {
            *v = layout.fetch(&t, s);
        }
        let ok = match &pred {
            Some(p) => p.matches(&flat)?,
            None => true,
        };
        if ok {
            kept.push(t);
        }
    }

    if query.is_aggregate() {
        return aggregate::aggregate(&layout, &kept, query, &resolve);
    }

    let mut proj: Vec<usize> = Vec::new();
    let mut names: Vec<String> = Vec::new();
    for item in &query.select {
        match item {
            SelectItem::Star => {
                for s in 0..layout.total_slots {
                    proj.push(s);
                    names.push(layout.slot_name(s));
                }
            }
            SelectItem::Column(c) => {
                let s = layout.resolve(c)?;
                proj.push(s);
                names.push(c.to_string());
            }
            SelectItem::Aggregate(_) => unreachable!(),
        }
    }

    let order: Vec<(usize, bool)> = query
        .order_by
        .iter()
        .map(|k| Ok((layout.resolve(&k.column)?, k.desc)))
        .collect::<DbResult<_>>()?;
    if !order.is_empty() {
        kept.sort_by(|a, b| {
            for &(s, desc) in &order {
                let ord = layout.fetch(a, s).cmp(&layout.fetch(b, s));
                let ord = if desc { ord.reverse() } else { ord };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
    }

    let limit = query.limit.unwrap_or(usize::MAX);
    let mut rows: Vec<Row> = Vec::new();
    let mut seen: HashMap<Row, ()> = HashMap::new();
    for t in &kept {
        if rows.len() >= limit {
            break;
        }
        let row: Row = proj.iter().map(|&s| layout.fetch(t, s)).collect();
        if query.distinct {
            if seen.contains_key(&row) {
                continue;
            }
            seen.insert(row.clone(), ());
        }
        rows.push(row);
    }
    Ok(ResultSet {
        columns: names,
        rows,
    })
}
