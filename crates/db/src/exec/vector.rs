//! Vectorized scan path: localized conjuncts are *compiled* into typed
//! column kernels, evaluated over selection vectors on [`MORSEL_ROWS`]-sized
//! morsels. Kernels read the columnar payloads directly (dictionary codes,
//! `i64`/`f64` slices) and never materialise per-cell [`Value`]s; only the
//! residual [`Kernel::Generic`] fallback touches `Value`, and it fetches just
//! the slots its expression references.
//!
//! Filtering conjunct-by-conjunct over a selection vector is equivalent to
//! evaluating the full conjunction under SQL three-valued logic *for row
//! keeping*: a WHERE clause keeps a row iff the predicate is `TRUE`, and a
//! conjunction is `TRUE` iff every conjunct is — both `FALSE` and `NULL`
//! conjuncts drop the row either way.
//!
//! Morsels are processed in row order; when sharded across threads each
//! shard covers a contiguous chunk range and results are concatenated in
//! shard order, so output row ids are identical to a sequential scan.

use super::{collect_slots, Layout};
use crate::column::ColumnData;
use crate::error::{DbError, DbResult};
use crate::expr::{CmpOp, Expr};
use crate::table::Table;
use crate::value::{canonical_f64_bits, Row, Value};
use crate::zonemap::{Zone, ZoneBounds, MORSEL_ROWS};
use asqp_telemetry as telemetry;
use std::cmp::Ordering;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};

/// A numeric literal, kept typed so integer comparisons stay exact.
#[derive(Debug, Clone, Copy)]
enum NumConst {
    Int(i64),
    Float(f64),
}

impl NumConst {
    fn of(v: &Value) -> Option<NumConst> {
        match v {
            Value::Int(i) => Some(NumConst::Int(*i)),
            Value::Float(f) => Some(NumConst::Float(*f)),
            _ => None,
        }
    }

    fn as_f64(self) -> f64 {
        match self {
            NumConst::Int(i) => i as f64,
            NumConst::Float(f) => f,
        }
    }
}

/// Mixed-type numeric comparison with [`Value::sql_cmp`] semantics:
/// int/int compares exactly, anything else through `f64` (`None` on NaN).
fn nc_cmp(a: NumConst, b: NumConst) -> Option<Ordering> {
    match (a, b) {
        (NumConst::Int(x), NumConst::Int(y)) => Some(x.cmp(&y)),
        _ => a.as_f64().partial_cmp(&b.as_f64()),
    }
}

/// One compiled conjunct.
#[derive(Debug)]
enum Kernel {
    /// `col <op> const` on a numeric column.
    NumCmp {
        col: usize,
        op: CmpOp,
        rhs: NumConst,
    },
    /// `col [NOT] BETWEEN lo AND hi` on a numeric column.
    NumBetween {
        col: usize,
        lo: NumConst,
        hi: NumConst,
        negated: bool,
    },
    /// `col [NOT] IN (...)` on a numeric column.
    NumIn {
        col: usize,
        ints: Vec<i64>,
        floats: Vec<f64>,
        negated: bool,
        has_null: bool,
    },
    /// `col IS [NOT] NULL` on any column: a pure validity-bitmap scan.
    IsNull { col: usize, negated: bool },
    /// Any single-column predicate on a dictionary-encoded string column,
    /// pre-evaluated once per dictionary entry: per row it is a single
    /// `mask[code]` lookup. Covers `=`, `<`, LIKE, IN, arbitrary combos.
    DictMask {
        col: usize,
        mask: Vec<bool>,
        null_passes: bool,
    },
    /// Same idea for boolean columns (three possible inputs).
    BoolMask {
        col: usize,
        pass_true: bool,
        pass_false: bool,
        pass_null: bool,
    },
    /// The conjunct can never be `TRUE` (e.g. comparison against NULL):
    /// the whole scan is empty.
    DropAll,
    /// Fallback: row-at-a-time evaluation fetching only the referenced slots.
    Generic { expr: Expr, slots: Vec<usize> },
}

impl Kernel {
    /// Column whose zone maps can prune chunks for this kernel.
    fn prune_col(&self) -> Option<usize> {
        match self {
            Kernel::NumCmp { col, .. }
            | Kernel::NumBetween { col, .. }
            | Kernel::NumIn { col, .. }
            | Kernel::IsNull { col, .. } => Some(*col),
            _ => None,
        }
    }
}

/// `true` when the kernel provably rejects every row summarised by `zone`.
/// All decisions are conservative: incomparable bounds (NaN) never prune.
fn kernel_skips(k: &Kernel, zone: &Zone) -> bool {
    let bounds = match (k, &zone.bounds) {
        // An all-NULL chunk: NULL never satisfies a comparison, BETWEEN or
        // IN (negated or not) — only IS NULL can keep rows here.
        (Kernel::IsNull { negated, .. }, None) => return *negated,
        (Kernel::IsNull { negated, .. }, Some(_)) => {
            return !*negated && !zone.has_nulls;
        }
        (_, None) => return true,
        (_, Some(b)) => b,
    };
    let (min, max) = match *bounds {
        ZoneBounds::Int { min, max } => (NumConst::Int(min), NumConst::Int(max)),
        ZoneBounds::Float { min, max } => (NumConst::Float(min), NumConst::Float(max)),
    };
    match k {
        Kernel::NumCmp { op, rhs, .. } => match op {
            CmpOp::Eq => {
                matches!(nc_cmp(*rhs, min), Some(Ordering::Less))
                    || matches!(nc_cmp(*rhs, max), Some(Ordering::Greater))
            }
            CmpOp::Lt => matches!(nc_cmp(min, *rhs), Some(Ordering::Equal | Ordering::Greater)),
            CmpOp::Le => matches!(nc_cmp(min, *rhs), Some(Ordering::Greater)),
            CmpOp::Gt => matches!(nc_cmp(max, *rhs), Some(Ordering::Equal | Ordering::Less)),
            CmpOp::Ge => matches!(nc_cmp(max, *rhs), Some(Ordering::Less)),
            CmpOp::Ne => {
                matches!(nc_cmp(min, max), Some(Ordering::Equal))
                    && matches!(nc_cmp(min, *rhs), Some(Ordering::Equal))
            }
        },
        Kernel::NumBetween {
            lo, hi, negated, ..
        } => {
            if *negated {
                // Skip only if every value provably lies inside [lo, hi].
                matches!(nc_cmp(min, *lo), Some(Ordering::Equal | Ordering::Greater))
                    && matches!(nc_cmp(max, *hi), Some(Ordering::Equal | Ordering::Less))
            } else {
                matches!(nc_cmp(max, *lo), Some(Ordering::Less))
                    || matches!(nc_cmp(min, *hi), Some(Ordering::Greater))
            }
        }
        Kernel::NumIn {
            ints,
            floats,
            negated,
            ..
        } => {
            if *negated {
                return false;
            }
            // Skip when every list item is provably outside [min, max].
            let outside = |c: NumConst| {
                matches!(nc_cmp(c, min), Some(Ordering::Less))
                    || matches!(nc_cmp(c, max), Some(Ordering::Greater))
            };
            ints.iter().all(|&i| outside(NumConst::Int(i)))
                && floats.iter().all(|&f| outside(NumConst::Float(f)))
        }
        _ => false,
    }
}

/// A compiled localized predicate for one table.
pub(super) struct Compiled {
    kernels: Vec<Kernel>,
    any_prunable: bool,
    always_empty: bool,
}

pub(super) fn compile(conjuncts: &[Expr], table: &Table) -> Compiled {
    let mut kernels: Vec<Kernel> = conjuncts.iter().map(|c| compile_one(c, table)).collect();
    // Typed kernels first (cheapest filters shrink the selection before the
    // generic fallback runs); stable within each class.
    kernels.sort_by_key(|k| matches!(k, Kernel::Generic { .. }) as u8);
    let always_empty = kernels.iter().any(|k| matches!(k, Kernel::DropAll));
    let any_prunable = kernels.iter().any(|k| k.prune_col().is_some());
    Compiled {
        kernels,
        any_prunable,
        always_empty,
    }
}

fn compile_one(conj: &Expr, table: &Table) -> Kernel {
    let mut slots = Vec::new();
    collect_slots(conj, &mut slots);
    slots.sort_unstable();
    slots.dedup();
    let generic = || Kernel::Generic {
        expr: conj.clone(),
        slots: slots.clone(),
    };
    let [col] = slots[..] else { return generic() };
    if col >= table.schema().len() {
        return generic();
    }

    // IS NULL needs only the validity bitmap, whatever the column type.
    if let Expr::IsNull { expr, negated } = conj {
        if matches!(**expr, Expr::Slot(s) if s == col) {
            return Kernel::IsNull {
                col,
                negated: *negated,
            };
        }
    }

    let ncols = table.schema().len();
    match table.column(col).data() {
        ColumnData::Str { dict, .. } => {
            // Pre-evaluate the conjunct for every dictionary entry (and for
            // NULL); per-row evaluation becomes a mask lookup on the code.
            let mut row: Row = vec![Value::Null; ncols];
            let mut mask = Vec::with_capacity(dict.len());
            for entry in dict {
                row[col] = Value::Str(entry.clone());
                match conj.eval(&row) {
                    Ok(v) => mask.push(matches!(v, Value::Bool(true))),
                    Err(_) => return generic(),
                }
            }
            row[col] = Value::Null;
            let null_passes = match conj.eval(&row) {
                Ok(v) => matches!(v, Value::Bool(true)),
                Err(_) => return generic(),
            };
            Kernel::DictMask {
                col,
                mask,
                null_passes,
            }
        }
        ColumnData::Bool(_) => {
            let mut row: Row = vec![Value::Null; ncols];
            let mut pass = [false; 3];
            for (i, v) in [Value::Bool(true), Value::Bool(false), Value::Null]
                .into_iter()
                .enumerate()
            {
                row[col] = v;
                match conj.eval(&row) {
                    Ok(r) => pass[i] = matches!(r, Value::Bool(true)),
                    Err(_) => return generic(),
                }
            }
            Kernel::BoolMask {
                col,
                pass_true: pass[0],
                pass_false: pass[1],
                pass_null: pass[2],
            }
        }
        ColumnData::Int(_) | ColumnData::Float(_) => compile_numeric(conj, col, generic),
    }
}

fn compile_numeric(conj: &Expr, col: usize, generic: impl Fn() -> Kernel) -> Kernel {
    let is_slot = |e: &Expr| matches!(e, Expr::Slot(s) if *s == col);
    match conj {
        Expr::Cmp { op, lhs, rhs } => {
            let (op, lit) = if is_slot(lhs) {
                match &**rhs {
                    Expr::Literal(v) => (*op, v),
                    _ => return generic(),
                }
            } else if is_slot(rhs) {
                match &**lhs {
                    Expr::Literal(v) => (op.flip(), v),
                    _ => return generic(),
                }
            } else {
                return generic();
            };
            match NumConst::of(lit) {
                Some(rhs) => Kernel::NumCmp { col, op, rhs },
                // NULL or non-numeric literal: sql_cmp is None for every
                // row, the comparison is never TRUE.
                None => Kernel::DropAll,
            }
        }
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } if is_slot(expr) => {
            let (Expr::Literal(l), Expr::Literal(h)) = (&**low, &**high) else {
                return generic();
            };
            match (NumConst::of(l), NumConst::of(h)) {
                (Some(lo), Some(hi)) => {
                    if lo.as_f64().is_nan() || hi.as_f64().is_nan() {
                        return Kernel::DropAll; // comparisons are never TRUE
                    }
                    Kernel::NumBetween {
                        col,
                        lo,
                        hi,
                        negated: *negated,
                    }
                }
                _ => Kernel::DropAll,
            }
        }
        Expr::In {
            expr,
            list,
            negated,
        } if is_slot(expr) => {
            let mut ints = Vec::new();
            let mut floats = Vec::new();
            let mut has_null = false;
            for item in list {
                match item {
                    Value::Int(i) => ints.push(*i),
                    Value::Float(f) => floats.push(*f),
                    Value::Null => has_null = true,
                    // Str/Bool items never equal a numeric value and are not
                    // NULL: they contribute nothing.
                    _ => {}
                }
            }
            Kernel::NumIn {
                col,
                ints,
                floats,
                negated: *negated,
                has_null,
            }
        }
        _ => generic(),
    }
}

/// Filter the selection vector in place through one kernel.
fn apply_kernel(k: &Kernel, table: &Table, sel: &mut Vec<usize>) -> DbResult<()> {
    match k {
        Kernel::NumCmp { col, op, rhs } => {
            let c = table.column(*col);
            let valid = c.validity();
            match (c.data(), rhs) {
                (ColumnData::Int(d), NumConst::Int(x)) => {
                    sel.retain(|&r| valid[r] && op.holds(d[r].cmp(x)));
                }
                (ColumnData::Int(d), NumConst::Float(x)) => {
                    sel.retain(|&r| {
                        valid[r] && matches!((d[r] as f64).partial_cmp(x), Some(o) if op.holds(o))
                    });
                }
                (ColumnData::Float(d), _) => {
                    let x = rhs.as_f64();
                    sel.retain(|&r| {
                        valid[r] && matches!(d[r].partial_cmp(&x), Some(o) if op.holds(o))
                    });
                }
                _ => unreachable!("NumCmp compiled for a non-numeric column"),
            }
        }
        Kernel::NumBetween {
            col,
            lo,
            hi,
            negated,
        } => {
            let c = table.column(*col);
            let valid = c.validity();
            match (c.data(), lo, hi) {
                (ColumnData::Int(d), NumConst::Int(l), NumConst::Int(h)) => {
                    sel.retain(|&r| valid[r] && ((d[r] >= *l && d[r] <= *h) != *negated));
                }
                (ColumnData::Int(d), _, _) => {
                    let (l, h) = (lo.as_f64(), hi.as_f64());
                    sel.retain(|&r| {
                        let v = d[r] as f64;
                        valid[r] && ((v >= l && v <= h) != *negated)
                    });
                }
                (ColumnData::Float(d), _, _) => {
                    let (l, h) = (lo.as_f64(), hi.as_f64());
                    // NaN values compare as unknown → row dropped.
                    sel.retain(|&r| {
                        let v = d[r];
                        valid[r] && !v.is_nan() && ((v >= l && v <= h) != *negated)
                    });
                }
                _ => unreachable!("NumBetween compiled for a non-numeric column"),
            }
        }
        Kernel::NumIn {
            col,
            ints,
            floats,
            negated,
            has_null,
        } => {
            let c = table.column(*col);
            let valid = c.validity();
            let keep = |found: bool| {
                if found {
                    !*negated
                } else if *has_null {
                    false // unknown, not negated-match
                } else {
                    *negated
                }
            };
            match c.data() {
                ColumnData::Int(d) => {
                    sel.retain(|&r| {
                        valid[r] && {
                            let v = d[r];
                            keep(ints.contains(&v) || floats.contains(&(v as f64)))
                        }
                    });
                }
                ColumnData::Float(d) => {
                    sel.retain(|&r| {
                        valid[r] && {
                            let v = d[r];
                            keep(floats.contains(&v) || ints.iter().any(|&i| v == i as f64))
                        }
                    });
                }
                _ => unreachable!("NumIn compiled for a non-numeric column"),
            }
        }
        Kernel::IsNull { col, negated } => {
            let valid = table.column(*col).validity();
            sel.retain(|&r| valid[r] == *negated);
        }
        Kernel::DictMask {
            col,
            mask,
            null_passes,
        } => {
            let c = table.column(*col);
            let valid = c.validity();
            let ColumnData::Str { codes, .. } = c.data() else {
                unreachable!("DictMask compiled for a non-string column")
            };
            sel.retain(|&r| {
                if valid[r] {
                    mask[codes[r] as usize]
                } else {
                    *null_passes
                }
            });
        }
        Kernel::BoolMask {
            col,
            pass_true,
            pass_false,
            pass_null,
        } => {
            let c = table.column(*col);
            let valid = c.validity();
            let ColumnData::Bool(d) = c.data() else {
                unreachable!("BoolMask compiled for a non-bool column")
            };
            sel.retain(|&r| {
                if !valid[r] {
                    *pass_null
                } else if d[r] {
                    *pass_true
                } else {
                    *pass_false
                }
            });
        }
        Kernel::DropAll => sel.clear(),
        Kernel::Generic { expr, slots } => {
            let ncols = table.schema().len();
            let mut row: Row = vec![Value::Null; ncols];
            let mut out = Vec::with_capacity(sel.len());
            for &r in sel.iter() {
                for &s in slots {
                    row[s] = table.value(r, s);
                }
                if expr.matches(&row)? {
                    out.push(r);
                }
            }
            *sel = out;
        }
    }
    Ok(())
}

/// Run `f` over `0..n` split into at most `shards` contiguous ranges on
/// crossbeam scoped threads, concatenating results in range order — output
/// is byte-identical to the sequential `f(0, n)`.
pub(super) fn run_sharded<T, F>(n: usize, shards: usize, f: F) -> DbResult<Vec<T>>
where
    T: Send,
    F: Fn(usize, usize) -> DbResult<Vec<T>> + Sync,
{
    if shards <= 1 || n < 2 {
        return f(0, n);
    }
    let shards = shards.min(n);
    let per = n.div_ceil(shards);
    let ranges: Vec<(usize, usize)> = (0..shards)
        .map(|i| (i * per, ((i + 1) * per).min(n)))
        .filter(|(a, b)| a < b)
        .collect();
    let f = &f;
    // asqp::in-order-merge: parts concatenated in range order below
    let parts: Vec<DbResult<Vec<T>>> = crossbeam::thread::scope(|s| {
        let handles: Vec<_> = ranges
            .iter()
            .map(|&(a, b)| s.spawn(move |_| f(a, b)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("executor worker panicked"))
            .collect()
    })
    .map_err(|_| DbError::ShapeMismatch("parallel executor worker panicked".into()))?;
    let mut out = Vec::new();
    for p in parts {
        out.extend(p?);
    }
    Ok(out)
}

/// Vectorized filtered scan: compile, zone-prune, then run morsels
/// (optionally sharded). Returns passing row ids in ascending order.
///
/// `limit` (from the optimizer's limit pushdown) stops after that many
/// passing rows. Each shard caps its own output and the in-order
/// concatenation is truncated, so the result is byte-identical to a
/// sequential early-stopping scan.
pub(super) fn filtered_scan_vectorized(
    table: &Table,
    conjuncts: &[Expr],
    shards: usize,
    limit: Option<usize>,
) -> DbResult<Vec<usize>> {
    let n = table.row_count();
    let cap = limit.unwrap_or(usize::MAX);
    if conjuncts.is_empty() {
        return Ok((0..n.min(cap)).collect());
    }
    let compiled = compile(conjuncts, table);
    if compiled.always_empty || n == 0 {
        return Ok(Vec::new());
    }
    let zones = if compiled.any_prunable {
        Some(table.zone_maps())
    } else {
        None
    };

    // Whole-table pruning from the fold of all chunk bounds.
    if let Some(z) = &zones {
        for k in &compiled.kernels {
            if let Some(col) = k.prune_col() {
                if let Some(cz) = &z.columns[col] {
                    if kernel_skips(k, &cz.whole) {
                        telemetry::counter("db.zonemap.tables_pruned", 1);
                        return Ok(Vec::new());
                    }
                }
            }
        }
    }

    // Pruned-vs-scanned accounting: each shard tallies locally and folds
    // into the shared atomics once, so the instrumented hot loop is
    // untouched. Skipped entirely when telemetry is off.
    let track = telemetry::enabled();
    let pruned_total = AtomicU64::new(0);
    let scanned_total = AtomicU64::new(0);

    let nchunks = n.div_ceil(MORSEL_ROWS);
    let shards = if n >= 2 * MORSEL_ROWS { shards } else { 1 };
    let out = run_sharded(nchunks, shards, |c0, c1| {
        let mut out = Vec::new();
        let mut sel: Vec<usize> = Vec::with_capacity(MORSEL_ROWS);
        let (mut pruned, mut scanned) = (0u64, 0u64);
        'chunks: for ch in c0..c1 {
            let start = ch * MORSEL_ROWS;
            let end = (start + MORSEL_ROWS).min(n);
            if let Some(z) = &zones {
                for k in &compiled.kernels {
                    if let Some(col) = k.prune_col() {
                        if let Some(cz) = &z.columns[col] {
                            if kernel_skips(k, &cz.chunks[ch]) {
                                pruned += 1;
                                continue 'chunks;
                            }
                        }
                    }
                }
            }
            scanned += 1;
            sel.clear();
            sel.extend(start..end);
            for k in &compiled.kernels {
                if sel.is_empty() {
                    break;
                }
                apply_kernel(k, table, &mut sel)?;
            }
            out.extend_from_slice(&sel);
            if out.len() >= cap {
                // This shard alone can satisfy the pushed-down limit; later
                // chunks cannot contribute to the first `cap` results.
                break;
            }
        }
        if track {
            pruned_total.fetch_add(pruned, AtomicOrdering::Relaxed);
            scanned_total.fetch_add(scanned, AtomicOrdering::Relaxed);
        }
        Ok(out)
    })?;
    let mut out = out;
    out.truncate(cap);
    if track {
        telemetry::counter(
            "db.zonemap.morsels_pruned",
            pruned_total.load(AtomicOrdering::Relaxed),
        );
        telemetry::counter(
            "db.exec.morsels_scanned",
            scanned_total.load(AtomicOrdering::Relaxed),
        );
    }
    Ok(out)
}

/// Hash-join probe over the intermediate, general (multi-column) keys.
/// Sharded over contiguous probe ranges; concatenation preserves the
/// sequential output order exactly.
pub(super) fn probe_general(
    layout: &Layout,
    inter: &[Vec<usize>],
    hash: &HashMap<Vec<Value>, Vec<usize>>,
    link: &[(usize, usize)],
    next: usize,
    shards: usize,
) -> DbResult<Vec<Vec<usize>>> {
    run_sharded(inter.len(), shards, |a, b| {
        let mut out = Vec::new();
        for t in &inter[a..b] {
            let key: Vec<Value> = link.iter().map(|&(ps, _)| layout.fetch(t, ps)).collect();
            if key.iter().any(Value::is_null) {
                continue;
            }
            if let Some(matches) = hash.get(&key) {
                for &rid in matches {
                    let mut nt = t.clone();
                    nt[next] = rid;
                    out.push(nt);
                }
            }
        }
        Ok(out)
    })
}

/// Single numeric-key probe fast path: keys are canonical `f64` bit
/// patterns, which agrees exactly with `Value`'s Eq/Hash for numeric values
/// (ints and floats that compare equal share a key; NULL never joins).
pub(super) fn probe_numeric(
    layout: &Layout,
    inter: &[Vec<usize>],
    hash: &HashMap<u64, Vec<usize>>,
    probe_binding: usize,
    probe_col: usize,
    next: usize,
    shards: usize,
) -> DbResult<Vec<Vec<usize>>> {
    let table = layout.bindings[probe_binding].table;
    let col = table.column(probe_col);
    run_sharded(inter.len(), shards, |a, b| {
        let mut out = Vec::new();
        for t in &inter[a..b] {
            let Some(v) = col.get_f64(t[probe_binding]) else {
                continue; // NULL or non-numeric never equi-joins
            };
            if let Some(matches) = hash.get(&canonical_f64_bits(v)) {
                for &rid in matches {
                    let mut nt = t.clone();
                    nt[next] = rid;
                    out.push(nt);
                }
            }
        }
        Ok(out)
    })
}
