//! Hash aggregation over joined row-id tuples.

use super::Layout;
use crate::error::{DbError, DbResult};
use crate::expr::ColRef;
use crate::query::{AggExpr, AggFunc, Query, SelectItem};
use crate::value::{Row, Value};
use std::collections::HashMap;

/// Running state for one aggregate call.
#[derive(Debug, Clone)]
enum AggState {
    Count(i64),
    Sum { sum: f64, any: bool, int: bool },
    Avg { sum: f64, count: i64 },
    Min(Option<Value>),
    Max(Option<Value>),
}

impl AggState {
    fn new(func: AggFunc) -> Self {
        match func {
            AggFunc::Count => AggState::Count(0),
            AggFunc::Sum => AggState::Sum {
                sum: 0.0,
                any: false,
                int: true,
            },
            AggFunc::Avg => AggState::Avg { sum: 0.0, count: 0 },
            AggFunc::Min => AggState::Min(None),
            AggFunc::Max => AggState::Max(None),
        }
    }

    /// Feed one input value. `v` is `None` for `COUNT(*)` (row-counting).
    fn update(&mut self, v: Option<&Value>) {
        match self {
            AggState::Count(c) => match v {
                None => *c += 1,        // COUNT(*)
                Some(Value::Null) => {} // COUNT(col) skips NULLs
                Some(_) => *c += 1,
            },
            AggState::Sum { sum, any, int } => {
                if let Some(v) = v {
                    if let Some(f) = v.as_f64() {
                        *sum += f;
                        *any = true;
                        if !matches!(v, Value::Int(_)) {
                            *int = false;
                        }
                    }
                }
            }
            AggState::Avg { sum, count } => {
                if let Some(v) = v {
                    if let Some(f) = v.as_f64() {
                        *sum += f;
                        *count += 1;
                    }
                }
            }
            AggState::Min(cur) => {
                if let Some(v) = v {
                    if !v.is_null() && cur.as_ref().is_none_or(|c| v < c) {
                        *cur = Some(v.clone());
                    }
                }
            }
            AggState::Max(cur) => {
                if let Some(v) = v {
                    if !v.is_null() && cur.as_ref().is_none_or(|c| v > c) {
                        *cur = Some(v.clone());
                    }
                }
            }
        }
    }

    fn finish(&self) -> Value {
        match self {
            AggState::Count(c) => Value::Int(*c),
            AggState::Sum { sum, any, int } => {
                if !*any {
                    Value::Null // SQL: SUM over no rows is NULL
                } else if *int && sum.fract() == 0.0 {
                    Value::Int(*sum as i64)
                } else {
                    Value::Float(*sum)
                }
            }
            AggState::Avg { sum, count } => {
                if *count == 0 {
                    Value::Null
                } else {
                    Value::Float(*sum / *count as f64)
                }
            }
            AggState::Min(v) | AggState::Max(v) => v.clone().unwrap_or(Value::Null),
        }
    }
}

/// Aggregate the joined intermediate and produce the final result set.
pub(super) fn aggregate(
    layout: &Layout,
    inter: &[Vec<usize>],
    query: &Query,
    resolve: &dyn Fn(&ColRef) -> DbResult<usize>,
) -> DbResult<super::ResultSet> {
    // Resolve group keys and validate plain select columns against them.
    let group_slots: Vec<usize> = query
        .group_by
        .iter()
        .map(resolve)
        .collect::<DbResult<_>>()?;

    struct OutItem {
        name: String,
        kind: OutKind,
    }
    enum OutKind {
        /// Index into the group-key vector.
        Key(usize),
        /// Index into the per-group aggregate-state vector.
        Agg(usize),
    }

    let mut agg_specs: Vec<AggExpr> = Vec::new();
    let mut items: Vec<OutItem> = Vec::new();
    for sel in &query.select {
        match sel {
            SelectItem::Star => {
                return Err(DbError::InvalidQuery(
                    "SELECT * cannot be combined with aggregates".into(),
                ))
            }
            SelectItem::Column(c) => {
                let slot = resolve(c)?;
                let key_pos = group_slots.iter().position(|&g| g == slot).ok_or_else(|| {
                    DbError::InvalidQuery(format!("column {c} is not in GROUP BY"))
                })?;
                items.push(OutItem {
                    name: c.to_string(),
                    kind: OutKind::Key(key_pos),
                });
            }
            SelectItem::Aggregate(a) => {
                items.push(OutItem {
                    name: a.to_string(),
                    kind: OutKind::Agg(agg_specs.len()),
                });
                agg_specs.push(a.clone());
            }
        }
    }

    // Resolve aggregate argument slots once.
    let agg_slots: Vec<Option<usize>> = agg_specs
        .iter()
        .map(|a| a.arg.as_ref().map(resolve).transpose())
        .collect::<DbResult<_>>()?;

    // Accumulate.
    let mut groups: HashMap<Vec<Value>, Vec<AggState>> = HashMap::new();
    for t in inter {
        let key: Vec<Value> = group_slots.iter().map(|&s| layout.fetch(t, s)).collect();
        let states = groups
            .entry(key)
            .or_insert_with(|| agg_specs.iter().map(|a| AggState::new(a.func)).collect());
        for (st, slot) in states.iter_mut().zip(&agg_slots) {
            match slot {
                Some(s) => st.update(Some(&layout.fetch(t, *s))),
                None => st.update(None),
            }
        }
    }

    // Global aggregate over an empty input still yields one row.
    if groups.is_empty() && group_slots.is_empty() {
        groups.insert(
            Vec::new(),
            agg_specs.iter().map(|a| AggState::new(a.func)).collect(),
        );
    }

    // Emit rows (deterministic order: sort by group key).
    // asqp::allow(iter-order): drained into a Vec and sorted immediately below
    let mut keyed: Vec<(Vec<Value>, Vec<AggState>)> = groups.into_iter().collect();
    keyed.sort_by(|a, b| a.0.cmp(&b.0));

    let mut rows: Vec<Row> = keyed
        .iter()
        .map(|(key, states)| {
            items
                .iter()
                .map(|it| match &it.kind {
                    OutKind::Key(i) => key[*i].clone(),
                    OutKind::Agg(i) => states[*i].finish(),
                })
                .collect()
        })
        .collect();

    // ORDER BY over output columns (group keys or aggregate aliases by name).
    if !query.order_by.is_empty() {
        let key_cols: Vec<(usize, bool)> = query
            .order_by
            .iter()
            .map(|k| {
                let name = k.column.to_string();
                let pos = items
                    .iter()
                    .position(|it| {
                        it.name == name || it.name.ends_with(&format!(".{}", k.column.column))
                    })
                    .ok_or_else(|| {
                        DbError::InvalidQuery(format!("ORDER BY {name}: not an output column"))
                    })?;
                Ok((pos, k.desc))
            })
            .collect::<DbResult<_>>()?;
        rows.sort_by(|a, b| {
            for &(pos, desc) in &key_cols {
                let ord = a[pos].cmp(&b[pos]);
                let ord = if desc { ord.reverse() } else { ord };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
    }

    if let Some(l) = query.limit {
        rows.truncate(l);
    }

    Ok(super::ResultSet {
        columns: items.into_iter().map(|i| i.name).collect(),
        rows,
    })
}
