//! Logical query plans: a canonical IR lowered from [`Query`], plus the
//! rewrite rules the optimizer applies to it.
//!
//! The IR is deliberately small — one operator per clause of the SQL subset
//! — and every rewrite is a standalone `LogicalPlan -> LogicalPlan`
//! function, so adding a rule means adding a function and a call site in
//! [`crate::optimizer::optimize`] (see DESIGN.md §11):
//!
//! * [`push_predicates`] — split the WHERE conjunction and sink every
//!   conjunct that references exactly one binding into that binding's scan;
//!   multi-binding (and constant) conjuncts stay in a residual
//!   [`LogicalPlan::Filter`].
//! * [`prune_columns`] — annotate each scan with the set of columns the
//!   query actually references, so scans need not materialise full rows.
//! * [`push_limit`] — sink a LIMIT through order- and cardinality-
//!   preserving operators (projections) into a single scan, letting the
//!   executor stop scanning after `n` passing rows.
//!
//! Join reordering lives in [`crate::optimizer`] because it needs a cost
//! model; the tree surgery helpers it uses ([`split_join_tree`],
//! [`build_join_tree`]) are here with the IR.
//!
//! Plans hold *named* expressions (never bound slots) and binding indices
//! into the query's FROM clause; [`PlanContext`] carries the name/schema
//! environment and mirrors the executor's resolution semantics exactly, so
//! the optimizer's conjunct classification always agrees with `exec`'s.

use crate::catalog::Database;
use crate::error::{DbError, DbResult};
use crate::expr::{ColRef, Expr};
use crate::query::{AggExpr, JoinCond, OrderKey, Query, SelectItem, TableRef};

/// Name/schema environment for one query: the FROM bindings in order.
#[derive(Debug, Clone)]
pub struct PlanContext {
    pub bindings: Vec<BindingInfo>,
}

/// One FROM binding: its visible name, catalog table, and column names.
#[derive(Debug, Clone)]
pub struct BindingInfo {
    /// Alias if given, else the table name.
    pub name: String,
    /// Catalog table name.
    pub table: String,
    /// Schema column names, in schema order.
    pub columns: Vec<String>,
}

impl PlanContext {
    /// Mirrors the executor's `Layout::new` checks: non-empty FROM, unique
    /// binding names, known tables.
    pub fn new(db: &Database, from: &[TableRef]) -> DbResult<Self> {
        if from.is_empty() {
            return Err(DbError::InvalidQuery("FROM clause is empty".into()));
        }
        let mut bindings: Vec<BindingInfo> = Vec::with_capacity(from.len());
        for tref in from {
            let name = tref.binding().to_string();
            if bindings.iter().any(|b| b.name == name) {
                return Err(DbError::Duplicate(format!("table binding {name}")));
            }
            let table = db.table(&tref.table)?;
            bindings.push(BindingInfo {
                name,
                table: tref.table.clone(),
                columns: table
                    .schema()
                    .columns()
                    .iter()
                    .map(|c| c.name.clone())
                    .collect(),
            });
        }
        Ok(PlanContext { bindings })
    }

    /// Which binding a column reference resolves to. Mirrors the executor's
    /// `Layout::resolve`: qualified names match the binding, unqualified
    /// names must be unambiguous across bindings.
    pub fn binding_of(&self, c: &ColRef) -> DbResult<usize> {
        match &c.table {
            Some(t) => {
                let bi = self
                    .bindings
                    .iter()
                    .position(|b| b.name == *t)
                    .ok_or_else(|| DbError::UnknownTable(t.clone()))?;
                if !self.bindings[bi].columns.iter().any(|n| n == &c.column) {
                    return Err(DbError::UnknownColumn(c.column.clone()));
                }
                Ok(bi)
            }
            None => {
                let mut hit: Option<usize> = None;
                for (bi, b) in self.bindings.iter().enumerate() {
                    if b.columns.iter().any(|n| n == &c.column) {
                        if hit.is_some() {
                            return Err(DbError::AmbiguousColumn(c.column.clone()));
                        }
                        hit = Some(bi);
                    }
                }
                hit.ok_or_else(|| DbError::UnknownColumn(c.column.clone()))
            }
        }
    }

    /// Sorted, deduplicated binding indices an expression references.
    pub fn bindings_of(&self, e: &Expr) -> DbResult<Vec<usize>> {
        let mut cols = Vec::new();
        e.collect_columns(&mut cols);
        let mut out: Vec<usize> = cols
            .iter()
            .map(|c| self.binding_of(c))
            .collect::<DbResult<_>>()?;
        out.sort_unstable();
        out.dedup();
        Ok(out)
    }
}

/// The logical operator tree. `est_rows` annotations are filled in by the
/// optimizer's cost model and rendered by EXPLAIN.
#[derive(Debug, Clone, PartialEq)]
pub enum LogicalPlan {
    /// Leaf: one FROM binding, with pushed-down single-binding filters, the
    /// pruned column set (`None` = all columns) and an optional pushed
    /// LIMIT (stop after `limit` passing rows).
    Scan {
        binding: usize,
        filters: Vec<Expr>,
        columns: Option<Vec<String>>,
        limit: Option<usize>,
        est_rows: Option<f64>,
    },
    /// Left-deep equi-join; `on` holds the conditions first satisfiable at
    /// this node.
    Join {
        left: Box<LogicalPlan>,
        right: Box<LogicalPlan>,
        on: Vec<JoinCond>,
        est_rows: Option<f64>,
    },
    /// Residual predicate (multi-binding or constant conjuncts).
    Filter {
        input: Box<LogicalPlan>,
        predicate: Expr,
    },
    Aggregate {
        input: Box<LogicalPlan>,
        group_by: Vec<ColRef>,
        aggregates: Vec<AggExpr>,
    },
    Sort {
        input: Box<LogicalPlan>,
        keys: Vec<OrderKey>,
    },
    Project {
        input: Box<LogicalPlan>,
        items: Vec<SelectItem>,
    },
    Distinct {
        input: Box<LogicalPlan>,
    },
    Limit {
        input: Box<LogicalPlan>,
        n: usize,
    },
}

impl LogicalPlan {
    fn scan(binding: usize) -> LogicalPlan {
        LogicalPlan::Scan {
            binding,
            filters: Vec::new(),
            columns: None,
            limit: None,
            est_rows: None,
        }
    }

    /// Number of Join nodes in this subtree (used to map executor join-step
    /// actuals onto rendered nodes).
    pub fn join_count(&self) -> usize {
        match self {
            LogicalPlan::Scan { .. } => 0,
            LogicalPlan::Join { left, right, .. } => 1 + left.join_count() + right.join_count(),
            LogicalPlan::Filter { input, .. }
            | LogicalPlan::Aggregate { input, .. }
            | LogicalPlan::Sort { input, .. }
            | LogicalPlan::Project { input, .. }
            | LogicalPlan::Distinct { input }
            | LogicalPlan::Limit { input, .. } => input.join_count(),
        }
    }
}

/// Rebuild a node with `f` applied to each direct child (leaves unchanged).
/// The recursion workhorse for rewrites that only care about some node
/// kinds and pass everything else through.
fn map_input(
    plan: LogicalPlan,
    mut f: impl FnMut(LogicalPlan) -> DbResult<LogicalPlan>,
) -> DbResult<LogicalPlan> {
    Ok(match plan {
        s @ LogicalPlan::Scan { .. } => s,
        LogicalPlan::Join {
            left,
            right,
            on,
            est_rows,
        } => LogicalPlan::Join {
            left: Box::new(f(*left)?),
            right: Box::new(f(*right)?),
            on,
            est_rows,
        },
        LogicalPlan::Filter { input, predicate } => LogicalPlan::Filter {
            input: Box::new(f(*input)?),
            predicate,
        },
        LogicalPlan::Aggregate {
            input,
            group_by,
            aggregates,
        } => LogicalPlan::Aggregate {
            input: Box::new(f(*input)?),
            group_by,
            aggregates,
        },
        LogicalPlan::Sort { input, keys } => LogicalPlan::Sort {
            input: Box::new(f(*input)?),
            keys,
        },
        LogicalPlan::Project { input, items } => LogicalPlan::Project {
            input: Box::new(f(*input)?),
            items,
        },
        LogicalPlan::Distinct { input } => LogicalPlan::Distinct {
            input: Box::new(f(*input)?),
        },
        LogicalPlan::Limit { input, n } => LogicalPlan::Limit {
            input: Box::new(f(*input)?),
            n,
        },
    })
}

/// Lower a query to the naive canonical tree: a left-deep join over the
/// FROM bindings in source order, each join condition attached at the
/// lowest node where both sides are available, the full WHERE conjunction
/// in one [`LogicalPlan::Filter`], and the trailing clause operators above.
///
/// Self-binding join conditions (`a.x = a.y` after alias resolution) become
/// ordinary filter conjuncts, exactly as the executor treats them.
pub fn lower(query: &Query, ctx: &PlanContext) -> DbResult<LogicalPlan> {
    let nb = ctx.bindings.len();

    // Partition join conditions by the highest binding they mention; the
    // left-deep join introducing that binding is where they attach.
    let mut join_conds: Vec<Vec<JoinCond>> = (0..nb).map(|_| Vec::new()).collect();
    let mut conjuncts: Vec<Expr> = Vec::new();
    for j in &query.joins {
        let lb = ctx.binding_of(&j.left)?;
        let rb = ctx.binding_of(&j.right)?;
        if lb == rb {
            conjuncts.push(Expr::eq(
                Expr::Column(j.left.clone()),
                Expr::Column(j.right.clone()),
            ));
        } else {
            join_conds[lb.max(rb)].push(j.clone());
        }
    }
    if let Some(pred) = &query.predicate {
        conjuncts.extend(pred.clone().split_conjuncts());
    }

    let mut root = LogicalPlan::scan(0);
    for (b, on) in join_conds.into_iter().enumerate().skip(1) {
        root = LogicalPlan::Join {
            left: Box::new(root),
            right: Box::new(LogicalPlan::scan(b)),
            on,
            est_rows: None,
        };
    }

    if let Some(predicate) = Expr::conjunction(conjuncts) {
        root = LogicalPlan::Filter {
            input: Box::new(root),
            predicate,
        };
    }

    if query.is_aggregate() {
        let aggregates: Vec<AggExpr> = query
            .select
            .iter()
            .filter_map(|s| match s {
                SelectItem::Aggregate(a) => Some(a.clone()),
                _ => None,
            })
            .collect();
        root = LogicalPlan::Aggregate {
            input: Box::new(root),
            group_by: query.group_by.clone(),
            aggregates,
        };
    } else {
        if !query.order_by.is_empty() {
            root = LogicalPlan::Sort {
                input: Box::new(root),
                keys: query.order_by.clone(),
            };
        }
        root = LogicalPlan::Project {
            input: Box::new(root),
            items: query.select.clone(),
        };
        if query.distinct {
            root = LogicalPlan::Distinct {
                input: Box::new(root),
            };
        }
    }
    if query.is_aggregate() && !query.order_by.is_empty() {
        root = LogicalPlan::Sort {
            input: Box::new(root),
            keys: query.order_by.clone(),
        };
    }
    if let Some(n) = query.limit {
        root = LogicalPlan::Limit {
            input: Box::new(root),
            n,
        };
    }
    Ok(root)
}

/// Rewrite: predicate pushdown. Splits every [`LogicalPlan::Filter`] into
/// conjuncts and sinks each conjunct referencing exactly one binding into
/// that binding's scan; the rest (cross-binding or constant) stay behind as
/// a smaller residual filter, dropped entirely when empty.
pub fn push_predicates(plan: LogicalPlan, ctx: &PlanContext) -> DbResult<LogicalPlan> {
    Ok(match plan {
        LogicalPlan::Filter { input, predicate } => {
            let mut input = push_predicates(*input, ctx)?;
            let mut residual: Vec<Expr> = Vec::new();
            for conj in predicate.split_conjuncts() {
                let bs = ctx.bindings_of(&conj)?;
                if bs.len() == 1 {
                    sink_into_scan(&mut input, bs[0], conj);
                } else {
                    residual.push(conj);
                }
            }
            match Expr::conjunction(residual) {
                Some(predicate) => LogicalPlan::Filter {
                    input: Box::new(input),
                    predicate,
                },
                None => input,
            }
        }
        other => map_input(other, |p| push_predicates(p, ctx))?,
    })
}

/// Append `conj` to the filters of the scan for `binding` (somewhere in the
/// join subtree under `plan`).
fn sink_into_scan(plan: &mut LogicalPlan, binding: usize, conj: Expr) {
    match plan {
        LogicalPlan::Scan {
            binding: b,
            filters,
            ..
        } if *b == binding => filters.push(conj),
        LogicalPlan::Scan { .. } => {}
        LogicalPlan::Join { left, right, .. } => {
            // The target scan is in exactly one subtree; try left first.
            let before = left.as_ref().clone();
            sink_into_scan(left, binding, conj.clone());
            if *left.as_ref() == before {
                sink_into_scan(right, binding, conj);
            }
        }
        LogicalPlan::Filter { input, .. }
        | LogicalPlan::Aggregate { input, .. }
        | LogicalPlan::Sort { input, .. }
        | LogicalPlan::Project { input, .. }
        | LogicalPlan::Distinct { input }
        | LogicalPlan::Limit { input, .. } => sink_into_scan(input, binding, conj),
    }
}

/// Rewrite: projection pruning. Collects every column the plan references —
/// select items, sort keys, group keys, aggregate arguments, filter and
/// join expressions — and annotates each scan with its binding's referenced
/// column names (schema order). `SELECT *` keeps scans unpruned.
pub fn prune_columns(plan: LogicalPlan, ctx: &PlanContext) -> DbResult<LogicalPlan> {
    let mut star = false;
    let mut needed: Vec<Vec<String>> = vec![Vec::new(); ctx.bindings.len()];
    collect_needed(&plan, ctx, &mut star, &mut needed)?;
    if star {
        return Ok(plan);
    }
    Ok(annotate_columns(plan, ctx, &needed))
}

fn note_col(ctx: &PlanContext, c: &ColRef, needed: &mut [Vec<String>]) -> DbResult<()> {
    let b = ctx.binding_of(c)?;
    if !needed[b].contains(&c.column) {
        needed[b].push(c.column.clone());
    }
    Ok(())
}

fn collect_needed(
    plan: &LogicalPlan,
    ctx: &PlanContext,
    star: &mut bool,
    needed: &mut [Vec<String>],
) -> DbResult<()> {
    let note_expr = |e: &Expr, needed: &mut [Vec<String>]| -> DbResult<()> {
        let mut cols = Vec::new();
        e.collect_columns(&mut cols);
        for c in &cols {
            note_col(ctx, c, needed)?;
        }
        Ok(())
    };
    match plan {
        LogicalPlan::Scan { filters, .. } => {
            for f in filters {
                note_expr(f, needed)?;
            }
        }
        LogicalPlan::Join {
            left, right, on, ..
        } => {
            for j in on {
                note_col(ctx, &j.left, needed)?;
                note_col(ctx, &j.right, needed)?;
            }
            collect_needed(left, ctx, star, needed)?;
            collect_needed(right, ctx, star, needed)?;
        }
        LogicalPlan::Filter { input, predicate } => {
            note_expr(predicate, needed)?;
            collect_needed(input, ctx, star, needed)?;
        }
        LogicalPlan::Aggregate {
            input,
            group_by,
            aggregates,
        } => {
            for g in group_by {
                note_col(ctx, g, needed)?;
            }
            for a in aggregates {
                if let Some(c) = &a.arg {
                    note_col(ctx, c, needed)?;
                }
            }
            collect_needed(input, ctx, star, needed)?;
        }
        LogicalPlan::Sort { input, keys } => {
            for k in keys {
                note_col(ctx, &k.column, needed)?;
            }
            collect_needed(input, ctx, star, needed)?;
        }
        LogicalPlan::Project { input, items } => {
            for item in items {
                match item {
                    SelectItem::Star => *star = true,
                    SelectItem::Column(c) => note_col(ctx, c, needed)?,
                    SelectItem::Aggregate(a) => {
                        if let Some(c) = &a.arg {
                            note_col(ctx, c, needed)?;
                        }
                    }
                }
            }
            collect_needed(input, ctx, star, needed)?;
        }
        LogicalPlan::Distinct { input } | LogicalPlan::Limit { input, .. } => {
            collect_needed(input, ctx, star, needed)?;
        }
    }
    Ok(())
}

fn annotate_columns(plan: LogicalPlan, ctx: &PlanContext, needed: &[Vec<String>]) -> LogicalPlan {
    match plan {
        LogicalPlan::Scan {
            binding,
            filters,
            limit,
            est_rows,
            ..
        } => {
            // Keep schema order for a stable, readable EXPLAIN.
            let cols: Vec<String> = ctx.bindings[binding]
                .columns
                .iter()
                .filter(|n| needed[binding].contains(n))
                .cloned()
                .collect();
            LogicalPlan::Scan {
                binding,
                filters,
                columns: Some(cols),
                limit,
                est_rows,
            }
        }
        LogicalPlan::Join {
            left,
            right,
            on,
            est_rows,
        } => LogicalPlan::Join {
            left: Box::new(annotate_columns(*left, ctx, needed)),
            right: Box::new(annotate_columns(*right, ctx, needed)),
            on,
            est_rows,
        },
        other => map_input(other, |p| Ok(annotate_columns(p, ctx, needed)))
            .expect("annotate_columns is infallible"),
    }
}

/// Is the operator chain from `plan` down to a scan order- and
/// cardinality-preserving (only projections in between)? When true, a LIMIT
/// above the chain may stop the scan itself after `n` passing rows. This is
/// a *shape* property — independent of whether the query has a LIMIT — so
/// the plan cache can memoise it while LIMIT values vary per query.
pub fn limit_pushable(plan: &LogicalPlan) -> bool {
    match plan {
        LogicalPlan::Limit { input, .. } | LogicalPlan::Project { input, .. } => {
            limit_pushable(input)
        }
        LogicalPlan::Scan { .. } => true,
        _ => false,
    }
}

/// Rewrite: limit pushdown. When the tree is `Limit → Project* → Scan`
/// (single table, no residual filter, sort, distinct or aggregate in the
/// way), annotate the scan so it stops after `n` passing rows.
pub fn push_limit(plan: LogicalPlan) -> LogicalPlan {
    if !limit_pushable(&plan) {
        return plan;
    }
    let LogicalPlan::Limit { input, n } = plan else {
        return plan;
    };
    fn set_scan_limit(plan: LogicalPlan, n: usize) -> LogicalPlan {
        match plan {
            LogicalPlan::Scan {
                binding,
                filters,
                columns,
                est_rows,
                ..
            } => LogicalPlan::Scan {
                binding,
                filters,
                columns,
                limit: Some(n),
                est_rows,
            },
            other => map_input(other, |p| Ok(set_scan_limit(p, n)))
                .expect("set_scan_limit is infallible"),
        }
    }
    LogicalPlan::Limit {
        input: Box::new(set_scan_limit(*input, n)),
        n,
    }
}

/// Split the operator chain above the join tree from the join tree itself.
/// Returns the decoration chain outside-in (root first) with their inputs
/// emptied out, plus the core (the topmost Join/Scan/Filter-over-joins
/// subtree is *not* included — the residual Filter is part of the chain).
pub fn split_join_tree(plan: LogicalPlan) -> (Vec<LogicalPlan>, LogicalPlan) {
    let mut chain = Vec::new();
    let mut cur = plan;
    loop {
        cur = match cur {
            LogicalPlan::Scan { .. } | LogicalPlan::Join { .. } => return (chain, cur),
            LogicalPlan::Filter { input, predicate } => {
                chain.push(LogicalPlan::Filter {
                    input: Box::new(placeholder()),
                    predicate,
                });
                *input
            }
            LogicalPlan::Aggregate {
                input,
                group_by,
                aggregates,
            } => {
                chain.push(LogicalPlan::Aggregate {
                    input: Box::new(placeholder()),
                    group_by,
                    aggregates,
                });
                *input
            }
            LogicalPlan::Sort { input, keys } => {
                chain.push(LogicalPlan::Sort {
                    input: Box::new(placeholder()),
                    keys,
                });
                *input
            }
            LogicalPlan::Project { input, items } => {
                chain.push(LogicalPlan::Project {
                    input: Box::new(placeholder()),
                    items,
                });
                *input
            }
            LogicalPlan::Distinct { input } => {
                chain.push(LogicalPlan::Distinct {
                    input: Box::new(placeholder()),
                });
                *input
            }
            LogicalPlan::Limit { input, n } => {
                chain.push(LogicalPlan::Limit {
                    input: Box::new(placeholder()),
                    n,
                });
                *input
            }
        };
    }
}

fn placeholder() -> LogicalPlan {
    LogicalPlan::scan(usize::MAX)
}

/// Inverse of [`split_join_tree`]: thread `core` back under the chain.
pub fn rebuild_chain(chain: Vec<LogicalPlan>, core: LogicalPlan) -> LogicalPlan {
    let mut cur = core;
    for node in chain.into_iter().rev() {
        cur = match node {
            LogicalPlan::Filter { predicate, .. } => LogicalPlan::Filter {
                input: Box::new(cur),
                predicate,
            },
            LogicalPlan::Aggregate {
                group_by,
                aggregates,
                ..
            } => LogicalPlan::Aggregate {
                input: Box::new(cur),
                group_by,
                aggregates,
            },
            LogicalPlan::Sort { keys, .. } => LogicalPlan::Sort {
                input: Box::new(cur),
                keys,
            },
            LogicalPlan::Project { items, .. } => LogicalPlan::Project {
                input: Box::new(cur),
                items,
            },
            LogicalPlan::Distinct { .. } => LogicalPlan::Distinct {
                input: Box::new(cur),
            },
            LogicalPlan::Limit { n, .. } => LogicalPlan::Limit {
                input: Box::new(cur),
                n,
            },
            LogicalPlan::Scan { .. } | LogicalPlan::Join { .. } => {
                unreachable!("split_join_tree never puts leaves in the chain")
            }
        };
    }
    cur
}

/// Flatten a join tree into its scan leaves (by binding) and the union of
/// its join conditions.
pub fn flatten_join_tree(core: LogicalPlan) -> (Vec<LogicalPlan>, Vec<JoinCond>) {
    let mut scans = Vec::new();
    let mut conds = Vec::new();
    fn walk(plan: LogicalPlan, scans: &mut Vec<LogicalPlan>, conds: &mut Vec<JoinCond>) {
        match plan {
            s @ LogicalPlan::Scan { .. } => scans.push(s),
            LogicalPlan::Join {
                left,
                right,
                mut on,
                ..
            } => {
                walk(*left, scans, conds);
                walk(*right, scans, conds);
                conds.append(&mut on);
            }
            _ => unreachable!("join trees contain only Scan and Join nodes"),
        }
    }
    walk(core, &mut scans, &mut conds);
    scans.sort_by_key(|s| match s {
        LogicalPlan::Scan { binding, .. } => *binding,
        _ => unreachable!(),
    });
    (scans, conds)
}

/// Build a left-deep join tree over `scans` in `order`, attaching each
/// condition at the first node where both of its bindings are available.
/// `est_join_rows[i]` annotates the node joining `order[i + 1]`.
pub fn build_join_tree(
    mut scans: Vec<LogicalPlan>,
    conds: Vec<JoinCond>,
    order: &[usize],
    est_join_rows: &[f64],
    ctx: &PlanContext,
) -> DbResult<LogicalPlan> {
    let binding_of_scan = |s: &LogicalPlan| match s {
        LogicalPlan::Scan { binding, .. } => *binding,
        _ => unreachable!(),
    };
    let take = |scans: &mut Vec<LogicalPlan>, b: usize| -> LogicalPlan {
        let i = scans
            .iter()
            .position(|s| binding_of_scan(s) == b)
            .expect("order is a permutation of scan bindings");
        scans.remove(i)
    };

    let mut placed = vec![false; ctx.bindings.len()];
    let mut remaining: Vec<(usize, usize, JoinCond)> = conds
        .into_iter()
        .map(|j| {
            let lb = ctx.binding_of(&j.left)?;
            let rb = ctx.binding_of(&j.right)?;
            Ok((lb, rb, j))
        })
        .collect::<DbResult<_>>()?;

    let mut root = take(&mut scans, order[0]);
    placed[order[0]] = true;
    for (step, &b) in order.iter().enumerate().skip(1) {
        let right = take(&mut scans, b);
        placed[b] = true;
        let mut on = Vec::new();
        remaining.retain(|(lb, rb, j)| {
            if placed[*lb] && placed[*rb] {
                on.push(j.clone());
                false
            } else {
                true
            }
        });
        root = LogicalPlan::Join {
            left: Box::new(root),
            right: Box::new(right),
            on,
            est_rows: est_join_rows.get(step - 1).copied(),
        };
    }
    Ok(root)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::sql::parse;
    use crate::value::{Value, ValueType};

    fn db() -> Database {
        let mut db = Database::new();
        for (name, rows) in [("title", 20usize), ("person", 10)] {
            let t = db
                .create_table(
                    name,
                    Schema::build(&[
                        ("id", ValueType::Int),
                        ("name", ValueType::Str),
                        ("year", ValueType::Int),
                    ]),
                )
                .unwrap();
            for i in 0..rows {
                t.push_row(&[
                    Value::Int(i as i64),
                    Value::Str(format!("n{i}")),
                    Value::Int(1990 + i as i64),
                ])
                .unwrap();
            }
        }
        db
    }

    fn plan_for(db: &Database, sql: &str) -> (LogicalPlan, PlanContext) {
        let q = parse(sql).unwrap();
        let ctx = PlanContext::new(db, &q.from).unwrap();
        (lower(&q, &ctx).unwrap(), ctx)
    }

    fn scan_of(plan: &LogicalPlan, binding: usize) -> &LogicalPlan {
        match plan {
            LogicalPlan::Scan { binding: b, .. } if *b == binding => plan,
            LogicalPlan::Join { left, right, .. } => {
                if left.join_count() > 0 || matches!(**left, LogicalPlan::Scan { .. }) {
                    if let s @ LogicalPlan::Scan { binding: b, .. } = &**right {
                        if *b == binding {
                            return s;
                        }
                    }
                    scan_of(left, binding)
                } else {
                    scan_of(right, binding)
                }
            }
            LogicalPlan::Filter { input, .. }
            | LogicalPlan::Aggregate { input, .. }
            | LogicalPlan::Sort { input, .. }
            | LogicalPlan::Project { input, .. }
            | LogicalPlan::Distinct { input }
            | LogicalPlan::Limit { input, .. } => scan_of(input, binding),
            _ => panic!("binding {binding} not found"),
        }
    }

    #[test]
    fn pushdown_splits_conjuncts_to_their_scans() {
        let db = db();
        let (plan, ctx) = plan_for(
            &db,
            "SELECT t.name FROM title AS t, person AS p \
             WHERE t.id = p.id AND t.year > 1995 AND p.year < 1994 AND t.year < p.year",
        );
        let plan = push_predicates(plan, &ctx).unwrap();
        // Single-binding conjuncts sank into their scans.
        let LogicalPlan::Scan { filters, .. } = scan_of(&plan, 0) else {
            unreachable!()
        };
        assert_eq!(filters.len(), 1, "t.year > 1995 lands on t");
        let LogicalPlan::Scan { filters, .. } = scan_of(&plan, 1) else {
            unreachable!()
        };
        assert_eq!(filters.len(), 1, "p.year < 1994 lands on p");
        // The cross-binding conjunct stays in a residual filter.
        fn has_residual(p: &LogicalPlan) -> bool {
            match p {
                LogicalPlan::Filter { .. } => true,
                LogicalPlan::Join { left, right, .. } => has_residual(left) || has_residual(right),
                LogicalPlan::Scan { .. } => false,
                LogicalPlan::Aggregate { input, .. }
                | LogicalPlan::Sort { input, .. }
                | LogicalPlan::Project { input, .. }
                | LogicalPlan::Distinct { input }
                | LogicalPlan::Limit { input, .. } => has_residual(input),
            }
        }
        assert!(has_residual(&plan), "t.year < p.year must remain residual");
    }

    #[test]
    fn prune_keeps_only_referenced_columns() {
        let db = db();
        let (plan, ctx) = plan_for(
            &db,
            "SELECT t.name FROM title AS t, person AS p WHERE t.id = p.id AND p.year > 1991",
        );
        let plan = push_predicates(plan, &ctx).unwrap();
        let plan = prune_columns(plan, &ctx).unwrap();
        let LogicalPlan::Scan { columns, .. } = scan_of(&plan, 0) else {
            unreachable!()
        };
        assert_eq!(
            columns.as_deref(),
            Some(&["id".to_string(), "name".into()][..])
        );
        let LogicalPlan::Scan { columns, .. } = scan_of(&plan, 1) else {
            unreachable!()
        };
        assert_eq!(
            columns.as_deref(),
            Some(&["id".to_string(), "year".into()][..])
        );
    }

    #[test]
    fn star_disables_pruning() {
        let db = db();
        let (plan, ctx) = plan_for(&db, "SELECT * FROM title AS t WHERE t.year > 1995");
        let plan = prune_columns(push_predicates(plan, &ctx).unwrap(), &ctx).unwrap();
        let LogicalPlan::Scan { columns, .. } = scan_of(&plan, 0) else {
            unreachable!()
        };
        assert!(columns.is_none());
    }

    #[test]
    fn limit_pushes_through_projection_but_not_sort_or_distinct() {
        let db = db();
        let scan_limit = |sql: &str| {
            let (plan, ctx) = plan_for(&db, sql);
            let plan = push_limit(push_predicates(plan, &ctx).unwrap());
            match scan_of(&plan, 0) {
                LogicalPlan::Scan { limit, .. } => *limit,
                _ => unreachable!(),
            }
        };
        assert_eq!(
            scan_limit("SELECT t.name FROM title AS t WHERE t.year > 1995 LIMIT 3"),
            Some(3)
        );
        assert_eq!(
            scan_limit("SELECT t.name FROM title AS t ORDER BY t.year LIMIT 3"),
            None,
            "sort needs all input rows"
        );
        assert_eq!(
            scan_limit("SELECT DISTINCT t.name FROM title AS t LIMIT 3"),
            None,
            "distinct counts deduplicated rows"
        );
        assert_eq!(
            scan_limit("SELECT t.name FROM title AS t, person AS p WHERE t.id = p.id LIMIT 3"),
            None,
            "joins do not preserve scan cardinality"
        );
    }

    #[test]
    fn split_and_rebuild_round_trip() {
        let db = db();
        let (plan, ctx) = plan_for(
            &db,
            "SELECT t.name FROM title AS t, person AS p \
             WHERE t.id = p.id AND t.year < p.year ORDER BY t.name LIMIT 2",
        );
        let plan = push_predicates(plan, &ctx).unwrap();
        let (chain, core) = split_join_tree(plan.clone());
        assert!(matches!(core, LogicalPlan::Join { .. }));
        assert_eq!(rebuild_chain(chain, core), plan);
    }
}
