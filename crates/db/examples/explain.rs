//! Prints the optimizer's plan for a star join, cold and warm:
//!
//! ```text
//! cargo run -p asqp-db --example explain
//! ```
//!
//! The transcript in README.md ("Cost-based optimizer") is this output.

use asqp_db::{explain, explain_analyze, Database, Schema, Value, ValueType};

fn main() {
    let mut db = Database::new();
    let events = db
        .create_table(
            "events",
            Schema::build(&[
                ("id", ValueType::Int),
                ("user_id", ValueType::Int),
                ("qty", ValueType::Int),
            ]),
        )
        .unwrap();
    for i in 0..10_000i64 {
        events
            .push_row(&[Value::Int(i), Value::Int(i % 500), Value::Int(i % 100)])
            .unwrap();
    }
    let users = db
        .create_table(
            "users",
            Schema::build(&[("id", ValueType::Int), ("age", ValueType::Int)]),
        )
        .unwrap();
    for i in 0..500i64 {
        users
            .push_row(&[Value::Int(i), Value::Int(18 + (i * 7) % 72)])
            .unwrap();
    }

    let q = asqp_db::sql::parse(
        "SELECT e.id FROM events AS e, users AS u \
         WHERE e.user_id = u.id AND u.age < 25 AND e.qty < 10 LIMIT 20",
    )
    .unwrap();

    println!("{}", explain(&db, &q).unwrap());
    println!("{}", explain_analyze(&db, &q).unwrap());
}
