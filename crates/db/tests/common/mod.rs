//! Shared property-test infrastructure: the canonical-AST query generator
//! (used by the SQL round-trip suite and the optimizer oracle) and a fixture
//! database whose schema matches the generator's table/column vocabulary.
//!
//! Queries are generated directly as ASTs in *canonical form* — the shape
//! the rest of the system builds (joins in `Query::joins`, the predicate a
//! left-fold `AND` spine with no cross-binding `col = col` conjuncts) — for
//! which `parse(q.to_sql()) == q` holds exactly.
#![allow(dead_code)]

use asqp_db::expr::{CmpOp, ColRef, Expr};
use asqp_db::query::{AggExpr, AggFunc, JoinCond, OrderKey, Query, SelectItem, TableRef};
use asqp_db::{Database, Schema, Value, ValueType};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

pub const TABLES: &[(&str, &str)] = &[
    ("title", "t"),
    ("person", "p"),
    ("movie_cast", "mc"),
    ("company", "c"),
];
pub const COLUMNS: &[&str] = &["id", "name", "year", "kind", "score", "note"];
pub const WORDS: &[&str] = &["drama", "comedy", "alpha", "beta2", "x"];
pub const PATTERNS: &[&str] = &["a%", "%ing", "_b%", "abc", "%x_"];

pub fn pick<T: Copy>(rng: &mut StdRng, xs: &[T]) -> T {
    xs[rng.random_range(0..xs.len())]
}

pub fn col(rng: &mut StdRng, bindings: &[&str]) -> ColRef {
    ColRef::new(pick(rng, bindings), pick(rng, COLUMNS))
}

/// Whether a generator column holds text in the fixture schema. Atoms pair
/// string columns with string operations and numeric columns with numeric
/// literals, so generated queries both round-trip *and* execute against
/// [`fixture_db`] without type errors.
pub fn is_text_column(name: &str) -> bool {
    matches!(name, "name" | "kind" | "note")
}

pub fn literal(rng: &mut StdRng, text: bool) -> Value {
    if text {
        return Value::Str(pick(rng, WORDS).to_string());
    }
    if rng.random_bool(0.5) {
        Value::Int(rng.random_range(0..10_000i64))
    } else {
        // Forced fraction: a float that printed without a dot ("2") would
        // re-parse as an Int and break the round-trip.
        Value::Float(rng.random_range(0..2_000i64) as f64 + 0.5)
    }
}

/// A predicate atom: never a bare `col = col` (the parser would lift a
/// cross-binding one into `joins`, changing the AST shape).
pub fn atom(rng: &mut StdRng, bindings: &[&str]) -> Expr {
    let cr = col(rng, bindings);
    let text = is_text_column(&cr.column);
    let c = Expr::Column(cr);
    let choice = if text {
        // Between over integer bounds only applies to numeric columns.
        pick(rng, &[0u8, 2, 3, 4])
    } else {
        rng.random_range(0..5u8)
    };
    match choice {
        0 => {
            let op = pick(
                rng,
                &[
                    CmpOp::Eq,
                    CmpOp::Ne,
                    CmpOp::Lt,
                    CmpOp::Le,
                    CmpOp::Gt,
                    CmpOp::Ge,
                ],
            );
            Expr::cmp(op, c, Expr::Literal(literal(rng, text)))
        }
        1 => {
            let lo = rng.random_range(0..500i64);
            let hi = lo + rng.random_range(0..500i64);
            Expr::Between {
                expr: Box::new(c),
                low: Box::new(Expr::lit(lo)),
                high: Box::new(Expr::lit(hi)),
                negated: rng.random_bool(0.3),
            }
        }
        2 => {
            let n = rng.random_range(1..4usize);
            let list = if text {
                (0..n)
                    .map(|_| Value::Str(pick(rng, WORDS).to_string()))
                    .collect()
            } else {
                (0..n)
                    .map(|_| Value::Int(rng.random_range(0..100)))
                    .collect()
            };
            Expr::In {
                expr: Box::new(c),
                list,
                negated: rng.random_bool(0.3),
            }
        }
        3 if text => Expr::Like {
            expr: Box::new(c),
            pattern: pick(rng, PATTERNS).to_string(),
            negated: rng.random_bool(0.3),
        },
        _ => Expr::IsNull {
            expr: Box::new(c),
            negated: rng.random_bool(0.5),
        },
    }
}

/// Expression strictly inside an OR/NOT subtree: protected from conjunct
/// splitting, so any And/Or/Not shape round-trips.
pub fn inner(rng: &mut StdRng, bindings: &[&str], depth: u8) -> Expr {
    if depth == 0 {
        return atom(rng, bindings);
    }
    match rng.random_range(0..4u8) {
        0 => Expr::and(
            inner(rng, bindings, depth - 1),
            inner(rng, bindings, depth - 1),
        ),
        1 => Expr::or(
            inner(rng, bindings, depth - 1),
            inner(rng, bindings, depth - 1),
        ),
        2 => Expr::Not(Box::new(inner(rng, bindings, depth - 1))),
        _ => atom(rng, bindings),
    }
}

/// One element of the top-level conjunction spine: an atom, or an OR/NOT
/// subtree — never an AND, which would flatten into the spine and get
/// rebuilt left-deep.
pub fn conjunct(rng: &mut StdRng, bindings: &[&str]) -> Expr {
    match rng.random_range(0..4u8) {
        0 => Expr::or(inner(rng, bindings, 2), inner(rng, bindings, 2)),
        1 => Expr::Not(Box::new(inner(rng, bindings, 1))),
        _ => atom(rng, bindings),
    }
}

/// Generate a canonical-form query over up to `max_tables` of the fixture
/// tables (join conditions on `id = id` between adjacent bindings).
pub fn gen_query_upto(rng: &mut StdRng, max_tables: usize) -> Query {
    let n_tables = rng.random_range(1..=max_tables.clamp(1, TABLES.len()));
    let mut from = Vec::new();
    let mut bindings: Vec<&str> = Vec::new();
    for &(table, alias) in TABLES.iter().take(n_tables) {
        if rng.random_bool(0.7) {
            from.push(TableRef::aliased(table, alias));
            bindings.push(alias);
        } else {
            from.push(TableRef::new(table));
            bindings.push(table);
        }
    }

    let mut joins = Vec::new();
    for i in 1..n_tables {
        if rng.random_bool(0.7) {
            joins.push(JoinCond::new(
                ColRef::new(bindings[i - 1], "id"),
                ColRef::new(bindings[i], "id"),
            ));
        }
    }

    let n_conj = rng.random_range(0..4usize);
    let predicate = Expr::conjunction((0..n_conj).map(|_| conjunct(rng, &bindings)).collect());

    let aggregate = rng.random_bool(0.3);
    let (select, distinct, group_by, order_by) = if aggregate {
        let n_group = rng.random_range(0..3usize);
        let group_by: Vec<ColRef> = (0..n_group).map(|_| col(rng, &bindings)).collect();
        let mut select: Vec<SelectItem> =
            group_by.iter().cloned().map(SelectItem::Column).collect();
        for _ in 0..rng.random_range(1..3usize) {
            let func = pick(
                rng,
                &[
                    AggFunc::Count,
                    AggFunc::Sum,
                    AggFunc::Avg,
                    AggFunc::Min,
                    AggFunc::Max,
                ],
            );
            // SUM/AVG need a numeric argument against the fixture schema.
            let numeric = matches!(func, AggFunc::Sum | AggFunc::Avg);
            let arg = (func != AggFunc::Count || rng.random_bool(0.5)).then(|| loop {
                let c = col(rng, &bindings);
                if !numeric || !is_text_column(&c.column) {
                    break c;
                }
            });
            select.push(SelectItem::Aggregate(AggExpr { func, arg }));
        }
        let mut order_by = Vec::new();
        for c in &group_by {
            if rng.random_bool(0.3) {
                order_by.push(OrderKey {
                    column: c.clone(),
                    desc: rng.random_bool(0.5),
                });
            }
        }
        (select, false, group_by, order_by)
    } else {
        let select = if rng.random_bool(0.25) {
            vec![SelectItem::Star]
        } else {
            (0..rng.random_range(1..4usize))
                .map(|_| SelectItem::Column(col(rng, &bindings)))
                .collect()
        };
        let order_by = (0..rng.random_range(0..3usize))
            .map(|_| OrderKey {
                column: col(rng, &bindings),
                desc: rng.random_bool(0.5),
            })
            .collect();
        (select, rng.random_bool(0.2), Vec::new(), order_by)
    };

    Query {
        select,
        distinct,
        from,
        joins,
        predicate,
        group_by,
        order_by,
        limit: rng.random_bool(0.3).then(|| rng.random_range(1..100usize)),
    }
}

/// The historical two-table generator shape used by the round-trip suite.
pub fn gen_query(rng: &mut StdRng) -> Query {
    gen_query_upto(rng, 2)
}

/// Fixture database matching the generator's vocabulary: every table carries
/// all six generator columns, `id` domains overlap across tables (so `id =
/// id` joins produce rows), string columns draw from [`WORDS`], and ~8% of
/// non-key cells are NULL.
pub fn fixture_db() -> Database {
    let mut db = Database::new();
    let mut rng = StdRng::seed_from_u64(0x07AC1E);
    let sizes: &[(&str, usize)] = &[
        ("title", 120),
        ("person", 80),
        ("movie_cast", 200),
        ("company", 15),
    ];
    for &(name, rows) in sizes {
        let schema = Schema::build(&[
            ("id", ValueType::Int),
            ("name", ValueType::Str),
            ("year", ValueType::Int),
            ("kind", ValueType::Str),
            ("score", ValueType::Float),
            ("note", ValueType::Str),
        ]);
        let table = db.create_table(name, schema).unwrap();
        for i in 0..rows {
            let id = (i as i64 * 3) % 90; // overlaps across all tables
            let mut row = vec![
                Value::Int(id),
                Value::Str(pick(&mut rng, WORDS).to_string()),
                Value::Int((i as i64 * 13) % 500),
                Value::Str(pick(&mut rng, WORDS).to_string()),
                Value::Float((i % 50) as f64 / 2.0 + 0.5),
                Value::Str(pick(&mut rng, WORDS).to_string()),
            ];
            for cell in row.iter_mut().skip(1) {
                if rng.random_bool(0.08) {
                    *cell = Value::Null;
                }
            }
            table.push_row(&row).unwrap();
        }
    }
    db
}
