//! Property-test oracle: the cost-based optimizer must not change what a
//! query *means*.
//!
//! Three comparisons, each pinning a different part of the contract:
//!
//! 1. **Exactness across executors.** With the same cost-based plan, the
//!    vectorized and row-oriented paths must agree byte-for-byte on rows,
//!    order, and lineage — the plan fully determines the answer.
//! 2. **Equivalence against the legacy heuristic.** Cost-based planning may
//!    reorder joins (changing tuple order for un-ordered queries), so the
//!    oracle compares multisets of `(row, lineage)` pairs; for `LIMIT`
//!    queries it checks the prefix contract (right length, rows drawn from
//!    the full result, sort keys respected) instead.
//! 3. **Plan-cache transparency.** Re-running a query through the shared
//!    plan cache must hit and return the identical answer.
//!
//! Queries come from the same canonical-AST generator as the SQL round-trip
//! suite (`common::gen_query_upto`), extended to three-way joins, plus fixed
//! pushdown-adversarial shapes (cross-binding residuals, LIMIT under
//! ORDER BY / DISTINCT) checked against the nested-loop reference executor.

mod common;

use asqp_db::exec::{execute_with_options, ExecMode, ExecOptions, QueryOutput};
use asqp_db::query::{OrderKey, Query};
use asqp_db::{
    execute_nested_loop, Database, Lineage, OptimizerMode, PlanCacheStatus, ResultSet, Row,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn opts(mode: ExecMode, optimizer: OptimizerMode, plan_cache: bool) -> ExecOptions {
    ExecOptions {
        mode,
        optimizer,
        plan_cache,
        ..ExecOptions::default()
    }
}

fn run(db: &Database, q: &Query, o: ExecOptions) -> QueryOutput {
    execute_with_options(db, q, o).expect("generated query must execute")
}

/// Multiset view of a result: rows paired with their lineage (empty for
/// aggregates), sorted canonically so order differences vanish. DISTINCT
/// queries compare rows only (`with_lineage: false`): which base tuple
/// represents a deduplicated row legitimately depends on join order.
fn multiset(out: &QueryOutput, with_lineage: bool) -> Vec<(Row, Lineage)> {
    let mut v: Vec<(Row, Lineage)> = out
        .result
        .rows
        .iter()
        .enumerate()
        .map(|(i, r)| {
            let lin = if with_lineage {
                out.lineage.get(i).cloned().unwrap_or_default()
            } else {
                Lineage::new()
            };
            (r.clone(), lin)
        })
        .collect();
    v.sort();
    v
}

fn sorted_rows(rs: &ResultSet) -> Vec<Row> {
    let mut v = rs.rows.clone();
    v.sort();
    v
}

/// Verify `rs` is ordered by `keys` — only when every key column appears in
/// the output (ORDER BY on non-projected columns can't be checked from the
/// result alone).
fn check_order(rs: &ResultSet, keys: &[OrderKey]) {
    let slots: Vec<(usize, bool)> = keys
        .iter()
        .filter_map(|k| {
            let name = k.column.to_string();
            rs.columns
                .iter()
                .position(|c| *c == name)
                .map(|i| (i, k.desc))
        })
        .collect();
    if slots.len() != keys.len() {
        return;
    }
    for w in rs.rows.windows(2) {
        let mut ord = std::cmp::Ordering::Equal;
        for &(slot, desc) in &slots {
            ord = w[0][slot].cmp(&w[1][slot]);
            if desc {
                ord = ord.reverse();
            }
            if ord != std::cmp::Ordering::Equal {
                break;
            }
        }
        assert_ne!(
            ord,
            std::cmp::Ordering::Greater,
            "result not sorted by {keys:?}"
        );
    }
}

/// `sub` must be a sub-multiset of `full`.
fn assert_sub_multiset(sub: &[(Row, Lineage)], full: &[(Row, Lineage)], sql: &str) {
    let mut i = 0;
    for item in sub {
        while i < full.len() && &full[i] < item {
            i += 1;
        }
        assert!(
            i < full.len() && &full[i] == item,
            "row {item:?} not in full result\n  sql: {sql}"
        );
        i += 1;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Optimized ≡ unoptimized over randomized canonical queries.
    #[test]
    fn optimizer_preserves_semantics(seed in any::<u64>()) {
        let db = common::fixture_db();
        let mut rng = StdRng::seed_from_u64(seed);
        let q = common::gen_query_upto(&mut rng, 3);
        let sql = q.to_sql();

        // 1. Same plan, different executors: exact agreement.
        let cost_vec = run(&db, &q, opts(ExecMode::Vectorized, OptimizerMode::CostBased, false));
        let cost_row = run(&db, &q, opts(ExecMode::RowOriented, OptimizerMode::CostBased, false));
        prop_assert_eq!(&cost_vec.result.columns, &cost_row.result.columns, "sql: {}", sql);
        prop_assert_eq!(&cost_vec.result.rows, &cost_row.result.rows, "sql: {}", sql);
        prop_assert_eq!(&cost_vec.lineage, &cost_row.lineage, "sql: {}", sql);

        // 2. Cost-based vs. the legacy greedy heuristic.
        let heur = run(&db, &q, opts(ExecMode::Vectorized, OptimizerMode::Heuristic, false));
        prop_assert_eq!(&cost_vec.result.columns, &heur.result.columns, "sql: {}", sql);
        match q.limit {
            None => {
                let with_lineage = !q.distinct;
                prop_assert_eq!(
                    multiset(&cost_vec, with_lineage),
                    multiset(&heur, with_lineage),
                    "sql: {}", sql
                );
                check_order(&cost_vec.result, &q.order_by);
            }
            Some(n) => {
                // Both executions see the same full result; LIMIT keeps any
                // n of it (deterministically per plan, but plans differ).
                let full_q = Query { limit: None, ..q.clone() };
                let full = run(&db, &full_q, opts(ExecMode::Vectorized, OptimizerMode::Heuristic, false));
                let expect_len = n.min(full.result.len());
                prop_assert_eq!(cost_vec.result.len(), expect_len, "sql: {}", sql);
                prop_assert_eq!(heur.result.len(), expect_len, "sql: {}", sql);
                let with_lineage = !q.distinct;
                assert_sub_multiset(
                    &multiset(&cost_vec, with_lineage),
                    &multiset(&full, with_lineage),
                    &sql,
                );
                check_order(&cost_vec.result, &q.order_by);
            }
        }

        // 3. Plan-cache transparency: second run hits and agrees exactly.
        let c1 = run(&db, &q, opts(ExecMode::Vectorized, OptimizerMode::CostBased, true));
        let c2 = run(&db, &q, opts(ExecMode::Vectorized, OptimizerMode::CostBased, true));
        prop_assert_eq!(c2.trace.cache, PlanCacheStatus::Hit, "sql: {}", sql);
        prop_assert_eq!(&c1.result.rows, &c2.result.rows, "sql: {}", sql);
        prop_assert_eq!(&c1.lineage, &c2.lineage, "sql: {}", sql);
    }
}

// --- Fixed pushdown-adversarial shapes, checked against the nested-loop
// --- reference executor.

fn parse(sql: &str) -> Query {
    asqp_db::sql::parse(sql).unwrap()
}

/// Cross-binding comparison in WHERE stays a residual filter above the join;
/// pushing it into either scan would drop rows.
#[test]
fn cross_binding_residual_filter_survives() {
    let db = common::fixture_db();
    let q = parse(
        "SELECT t.id, p.year FROM title AS t, person AS p \
         WHERE t.id = p.id AND t.year < p.year",
    );
    let reference = execute_nested_loop(&db, &q).unwrap();
    let got = run(
        &db,
        &q,
        opts(ExecMode::Vectorized, OptimizerMode::CostBased, false),
    );
    assert!(!got.result.is_empty(), "fixture must exercise the residual");
    assert_eq!(sorted_rows(&got.result), sorted_rows(&reference));
}

/// LIMIT under ORDER BY must not truncate the scan: the top-k by sort key
/// has to match the reference executor's keys exactly.
#[test]
fn limit_under_order_by_sorts_before_truncating() {
    let db = common::fixture_db();
    let q = parse("SELECT t.year FROM title AS t ORDER BY t.year DESC LIMIT 5");
    let reference = execute_nested_loop(&db, &q).unwrap();
    let got = run(
        &db,
        &q,
        opts(ExecMode::Vectorized, OptimizerMode::CostBased, false),
    );
    // Key values must agree even if ties broke differently.
    assert_eq!(sorted_rows(&got.result), sorted_rows(&reference));
    check_order(&got.result, &q.order_by);
}

/// LIMIT above DISTINCT counts distinct rows, not scanned rows.
#[test]
fn limit_above_distinct_counts_distinct_rows() {
    let db = common::fixture_db();
    let q = parse("SELECT DISTINCT t.kind FROM title AS t LIMIT 2");
    let full = parse("SELECT DISTINCT t.kind FROM title AS t");
    let distinct: Vec<Row> = execute_nested_loop(&db, &full).unwrap().rows;
    let got = run(
        &db,
        &q,
        opts(ExecMode::Vectorized, OptimizerMode::CostBased, false),
    );
    assert_eq!(got.result.len(), 2.min(distinct.len()));
    for row in &got.result.rows {
        assert!(distinct.contains(row), "{row:?} not a distinct kind");
    }
}

/// Aggregates over a join agree with the reference executor exactly (the
/// group ordering is pinned by ORDER BY).
#[test]
fn aggregate_over_join_matches_reference() {
    let db = common::fixture_db();
    let q = parse(
        "SELECT t.kind, COUNT(*), AVG(t.score) FROM title AS t, movie_cast AS mc \
         WHERE t.id = mc.id GROUP BY t.kind ORDER BY t.kind",
    );
    let reference = execute_nested_loop(&db, &q).unwrap();
    for optimizer in [OptimizerMode::CostBased, OptimizerMode::Heuristic] {
        let got = run(&db, &q, opts(ExecMode::Vectorized, optimizer, false));
        assert_eq!(got.result.rows, reference.rows, "optimizer {optimizer:?}");
    }
}

/// Single-binding LIMIT pushdown truncates the scan without changing the
/// answer: scan order is table order, so cost-based (pushed) and heuristic
/// (unpushed) agree exactly.
#[test]
fn single_table_limit_pushdown_is_exact() {
    let db = common::fixture_db();
    let q = parse("SELECT t.id FROM title AS t WHERE t.year > 100 LIMIT 4");
    let pushed = run(
        &db,
        &q,
        opts(ExecMode::Vectorized, OptimizerMode::CostBased, false),
    );
    let unpushed = run(
        &db,
        &q,
        opts(ExecMode::Vectorized, OptimizerMode::Heuristic, false),
    );
    assert_eq!(pushed.result.rows, unpushed.result.rows);
    assert_eq!(pushed.lineage, unpushed.lineage);
    assert_eq!(pushed.result.len(), 4);
}

/// NULL semantics under negation: `NOT (x < k)` must not resurrect NULL
/// rows, whichever side of the optimizer runs the predicate.
#[test]
fn negated_predicates_keep_null_semantics() {
    let db = common::fixture_db();
    let q = parse("SELECT t.id FROM title AS t WHERE NOT (t.year < 250)");
    let reference = execute_nested_loop(&db, &q).unwrap();
    let got = run(
        &db,
        &q,
        opts(ExecMode::Vectorized, OptimizerMode::CostBased, false),
    );
    assert_eq!(sorted_rows(&got.result), sorted_rows(&reference));
    let with_nulls = parse("SELECT t.id FROM title AS t");
    let total = execute_nested_loop(&db, &with_nulls).unwrap().len();
    assert!(got.result.len() < total, "NULL years must be filtered out");
}
