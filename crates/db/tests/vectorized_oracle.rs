//! Property-based executor oracle: on random databases and random SPJ
//! queries, the vectorized executor (sharded and sequential), the legacy
//! row-oriented executor and the nested-loop reference must agree — on
//! result sets, on row order between the two pipelined modes, and on
//! per-row lineage.

use asqp_db::{
    execute_nested_loop, execute_with_options, ColRef, Database, ExecMode, ExecOptions, Expr,
    JoinCond, OrderKey, Query, Row, Schema, SelectItem, TableRef, Value, ValueType,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const STR_POOL: &[&str] = &["alpha", "beta", "gamma", "delta", "epsilon", "zeta", ""];
const LIKE_PATTERNS: &[&str] = &["%a%", "a%", "%ta", "_e%", "%", "ga__a", "%z%"];

fn random_value(rng: &mut StdRng, ty: ValueType) -> Value {
    if rng.random_bool(0.12) {
        return Value::Null;
    }
    match ty {
        ValueType::Int => Value::Int(rng.random_range(-20i64..50)),
        // Quantized floats so equality predicates and joins actually hit.
        ValueType::Float => Value::Float(rng.random_range(-10i64..10) as f64 * 0.5),
        ValueType::Str => Value::Str(STR_POOL[rng.random_range(0..STR_POOL.len())].to_string()),
        ValueType::Bool => Value::Bool(rng.random_bool(0.5)),
    }
}

/// A table with a joinable dense-ish `id` column plus 2–4 random columns.
fn add_random_table(db: &mut Database, rng: &mut StdRng, name: &str, rows: usize) {
    let ntypes = [
        ValueType::Int,
        ValueType::Float,
        ValueType::Str,
        ValueType::Bool,
    ];
    let extra = rng.random_range(2usize..=4);
    let names: Vec<String> = (0..extra).map(|i| format!("c{i}")).collect();
    let mut cols: Vec<(&str, ValueType)> = vec![("id", ValueType::Int)];
    let tys: Vec<ValueType> = (0..extra)
        .map(|_| ntypes[rng.random_range(0..ntypes.len())])
        .collect();
    for (n, t) in names.iter().zip(&tys) {
        cols.push((n.as_str(), *t));
    }
    let t = db.create_table(name, Schema::build(&cols)).unwrap();
    let id_span = (rows as i64 / 2).max(1);
    for _ in 0..rows {
        let mut row = vec![Value::Int(rng.random_range(0..id_span))];
        for ty in &tys {
            row.push(random_value(rng, *ty));
        }
        t.push_row(&row).unwrap();
    }
}

/// One random single-column (occasionally multi-column) conjunct over a
/// binding, spanning every kernel class plus the generic fallback.
fn random_conjunct(rng: &mut StdRng, binding: &str, cols: &[(String, ValueType)]) -> Expr {
    let (name, ty) = &cols[rng.random_range(0..cols.len())];
    let col = || Expr::Column(ColRef::new(binding, name.clone()));
    let cmp_ops = [
        asqp_db::CmpOp::Eq,
        asqp_db::CmpOp::Ne,
        asqp_db::CmpOp::Lt,
        asqp_db::CmpOp::Le,
        asqp_db::CmpOp::Gt,
        asqp_db::CmpOp::Ge,
    ];
    let op = cmp_ops[rng.random_range(0..cmp_ops.len())];
    match ty {
        ValueType::Int | ValueType::Float => {
            let lit = |rng: &mut StdRng| {
                if rng.random_bool(0.5) {
                    Value::Int(rng.random_range(-25i64..55))
                } else {
                    Value::Float(rng.random_range(-12i64..12) as f64 * 0.5)
                }
            };
            match rng.random_range(0u8..6) {
                0 => Expr::cmp(op, col(), Expr::Literal(lit(rng))),
                // Flipped operand order exercises CmpOp::flip in the compiler.
                1 => Expr::cmp(op, Expr::Literal(lit(rng)), col()),
                2 => {
                    let a = rng.random_range(-20i64..40);
                    let b = a + rng.random_range(0i64..25);
                    Expr::Between {
                        expr: Box::new(col()),
                        low: Box::new(Expr::lit(a)),
                        high: Box::new(Expr::lit(b)),
                        negated: rng.random_bool(0.3),
                    }
                }
                3 => {
                    let n = rng.random_range(1usize..4);
                    let mut list: Vec<Value> = (0..n).map(|_| lit(rng)).collect();
                    if rng.random_bool(0.15) {
                        list.push(Value::Null);
                    }
                    Expr::In {
                        expr: Box::new(col()),
                        list,
                        negated: rng.random_bool(0.3),
                    }
                }
                4 => Expr::IsNull {
                    expr: Box::new(col()),
                    negated: rng.random_bool(0.5),
                },
                // Arithmetic forces the generic (narrow-fetch) fallback.
                _ => Expr::cmp(
                    op,
                    Expr::Arith {
                        op: asqp_db::ArithOp::Add,
                        lhs: Box::new(col()),
                        rhs: Box::new(Expr::lit(1)),
                    },
                    Expr::Literal(lit(rng)),
                ),
            }
        }
        ValueType::Str => {
            let pool_lit = |rng: &mut StdRng| {
                if rng.random_bool(0.15) {
                    Value::Str("omega".into()) // never in the dictionary
                } else {
                    Value::Str(STR_POOL[rng.random_range(0..STR_POOL.len())].into())
                }
            };
            match rng.random_range(0u8..4) {
                0 => Expr::cmp(op, col(), Expr::Literal(pool_lit(rng))),
                1 => Expr::Like {
                    expr: Box::new(col()),
                    pattern: LIKE_PATTERNS[rng.random_range(0..LIKE_PATTERNS.len())].into(),
                    negated: rng.random_bool(0.3),
                },
                2 => {
                    let n = rng.random_range(1usize..4);
                    Expr::In {
                        expr: Box::new(col()),
                        list: (0..n).map(|_| pool_lit(rng)).collect(),
                        negated: rng.random_bool(0.3),
                    }
                }
                _ => Expr::IsNull {
                    expr: Box::new(col()),
                    negated: rng.random_bool(0.5),
                },
            }
        }
        ValueType::Bool => match rng.random_range(0u8..3) {
            0 => Expr::eq(col(), Expr::lit(rng.random_bool(0.5))),
            1 => Expr::cmp(asqp_db::CmpOp::Ne, col(), Expr::lit(rng.random_bool(0.5))),
            _ => Expr::IsNull {
                expr: Box::new(col()),
                negated: rng.random_bool(0.5),
            },
        },
    }
}

fn column_list(db: &Database, table: &str) -> Vec<(String, ValueType)> {
    db.table(table)
        .unwrap()
        .schema()
        .columns()
        .iter()
        .map(|c| (c.name.clone(), c.ty))
        .collect()
}

/// Build a random SPJ query over `ntables` aliased bindings.
fn random_query(rng: &mut StdRng, db: &Database, ntables: usize) -> Query {
    let from: Vec<TableRef> = (0..ntables)
        .map(|i| TableRef::aliased(format!("t{i}"), format!("a{i}")))
        .collect();
    let cols: Vec<Vec<(String, ValueType)>> = (0..ntables)
        .map(|i| column_list(db, &format!("t{i}")))
        .collect();

    // Chain equi-joins on the id columns; sometimes add an extra condition
    // (multi-column link) or a same-binding condition (pushed filter).
    let mut joins = Vec::new();
    for i in 1..ntables {
        joins.push(JoinCond::new(
            ColRef::new(format!("a{}", i - 1), "id"),
            ColRef::new(format!("a{i}"), "id"),
        ));
    }
    if ntables == 3 && rng.random_bool(0.3) {
        joins.push(JoinCond::new(
            ColRef::new("a0", "id"),
            ColRef::new("a2", "id"),
        ));
    }
    if rng.random_bool(0.1) {
        joins.push(JoinCond::new(
            ColRef::new("a0", "id"),
            ColRef::new("a0", "id"),
        ));
    }

    let nconj = rng.random_range(0usize..=3);
    let conjs: Vec<Expr> = (0..nconj)
        .map(|_| {
            let b = rng.random_range(0..ntables);
            random_conjunct(rng, &format!("a{b}"), &cols[b])
        })
        .collect();

    let select = if rng.random_bool(0.5) {
        vec![SelectItem::Star]
    } else {
        (0..rng.random_range(1usize..=3))
            .map(|_| {
                let b = rng.random_range(0..ntables);
                let (n, _) = &cols[b][rng.random_range(0..cols[b].len())];
                SelectItem::Column(ColRef::new(format!("a{b}"), n.clone()))
            })
            .collect()
    };

    let order_by = if rng.random_bool(0.3) {
        (0..rng.random_range(1usize..=2))
            .map(|_| {
                let b = rng.random_range(0..ntables);
                let (n, _) = &cols[b][rng.random_range(0..cols[b].len())];
                OrderKey {
                    column: ColRef::new(format!("a{b}"), n.clone()),
                    desc: rng.random_bool(0.5),
                }
            })
            .collect()
    } else {
        Vec::new()
    };

    Query {
        select,
        distinct: rng.random_bool(0.25),
        from,
        joins,
        predicate: Expr::conjunction(conjs),
        group_by: Vec::new(),
        order_by,
        limit: if rng.random_bool(0.2) {
            Some(rng.random_range(0usize..30))
        } else {
            None
        },
    }
}

fn sorted(mut rows: Vec<Row>) -> Vec<Row> {
    rows.sort();
    rows
}

/// Run all executors on one (db, query) pair and cross-check them.
fn check_one(db: &Database, q: &Query) {
    let vec4 = execute_with_options(
        db,
        q,
        ExecOptions {
            mode: ExecMode::Vectorized,
            shards: 4,
            ..ExecOptions::default()
        },
    )
    .unwrap();
    let vec1 = execute_with_options(
        db,
        q,
        ExecOptions {
            mode: ExecMode::Vectorized,
            shards: 1,
            ..ExecOptions::default()
        },
    )
    .unwrap();
    let row = execute_with_options(db, q, ExecOptions::row_oriented()).unwrap();

    // Sharding must not change anything, bit for bit.
    assert_eq!(
        vec4.result,
        vec1.result,
        "sharded vs sequential: {}",
        q.to_sql()
    );
    assert_eq!(
        vec4.lineage,
        vec1.lineage,
        "sharded lineage: {}",
        q.to_sql()
    );

    // Vectorized and row-oriented share the plan: identical rows, order
    // and lineage.
    assert_eq!(vec4.result, row.result, "vectorized vs row: {}", q.to_sql());
    assert_eq!(vec4.lineage, row.lineage, "lineage: {}", q.to_sql());

    // Nested loop enumerates in a different order; compare as multisets.
    // LIMIT without a total order is plan-dependent, so skip it there.
    if q.limit.is_none() {
        let nested = execute_nested_loop(db, q).unwrap();
        assert_eq!(
            sorted(vec4.result.rows.clone()),
            sorted(nested.rows),
            "vectorized vs nested loop: {}",
            q.to_sql()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Single tables large enough to span several morsels, so zone pruning,
    /// chunk boundaries and sharding all engage.
    #[test]
    fn single_table_scans_agree(seed in 0u64..1_000_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut db = Database::new();
        let rows = rng.random_range(0usize..2600);
        add_random_table(&mut db, &mut rng, "t0", rows);
        for _ in 0..3 {
            let q = random_query(&mut rng, &db, 1);
            check_one(&db, &q);
        }
    }

    /// Multi-table joins (hash + occasional cartesian residue) against the
    /// exponential nested-loop reference.
    #[test]
    fn join_pipelines_agree(seed in 0u64..1_000_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let ntables = rng.random_range(2usize..=3);
        let mut db = Database::new();
        for i in 0..ntables {
            let rows = rng.random_range(5usize..45);
            add_random_table(&mut db, &mut rng, &format!("t{i}"), rows);
        }
        for _ in 0..2 {
            let q = random_query(&mut rng, &db, ntables);
            check_one(&db, &q);
        }
    }
}

/// Deterministic spot-check: a selective range over a clustered column must
/// prune most chunks yet return exactly the sequential/row-oriented answer.
#[test]
fn zone_pruning_preserves_results() {
    let mut db = Database::new();
    let t = db
        .create_table(
            "t0",
            Schema::build(&[("id", ValueType::Int), ("c0", ValueType::Int)]),
        )
        .unwrap();
    for i in 0..10_000i64 {
        t.push_row(&[Value::Int(i), Value::Int(i % 97)]).unwrap();
    }
    let q =
        asqp_db::sql::parse("SELECT a.id FROM t0 a WHERE a.id BETWEEN 4000 AND 4100 AND a.c0 < 50")
            .unwrap();
    check_one(&db, &q);
    let out = db.execute(&q).unwrap();
    assert!(!out.rows.is_empty());
}
