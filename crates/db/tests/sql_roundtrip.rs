//! Property test: SQL parse → display → re-parse round-trips.
//!
//! Queries are generated directly as ASTs in *canonical form* — the shape
//! the rest of the system builds (joins in `Query::joins`, the predicate a
//! left-fold `AND` spine with no cross-binding `col = col` conjuncts) —
//! for which `parse(q.to_sql()) == q` holds exactly. On top of the strict
//! round-trip, every query must also be a display fixpoint: one
//! parse/display cycle reaches text that re-parses to itself, which is the
//! contract callers rely on when they persist query text.

mod common;

use asqp_db::expr::ColRef;
use asqp_db::query::JoinCond;
use asqp_db::sql::parse;
use common::gen_query;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Strict round-trip on canonical ASTs, plus the display fixpoint.
    #[test]
    fn parse_display_roundtrip(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let q = gen_query(&mut rng);
        let sql1 = q.to_sql();

        let q1 = match parse(&sql1) {
            Ok(q1) => q1,
            Err(e) => panic!("generated SQL failed to parse: {e}\n  sql: {sql1}"),
        };
        prop_assert_eq!(&q1, &q, "parse(display(q)) != q\n  sql: {}", sql1);

        let sql2 = q1.to_sql();
        prop_assert_eq!(&sql2, &sql1, "display not a fixpoint");
        let q2 = parse(&sql2).expect("fixpoint SQL must re-parse");
        prop_assert_eq!(&q2, &q1, "second round-trip diverged\n  sql: {}", sql2);
    }

    /// Aggregate-specific slice: the aggregate → SPJ rewrite must itself
    /// produce SQL that round-trips (it feeds the training pipeline).
    #[test]
    fn strip_aggregates_output_roundtrips(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xA66);
        let q = gen_query(&mut rng).strip_aggregates();
        let sql = q.to_sql();
        let q1 = parse(&sql).expect("stripped query must parse");
        prop_assert_eq!(&q1, &q, "stripped query round-trip\n  sql: {}", sql);
    }
}

/// Join lifting is part of the round-trip contract: a cross-binding
/// equality written in WHERE comes back as a `Query::joins` entry, and the
/// next display/parse cycle is stable.
#[test]
fn where_join_conjuncts_lift_and_stay_stable() {
    let q = parse(
        "SELECT t.name FROM title AS t, person AS p \
         WHERE t.id = p.id AND t.year > 1990",
    )
    .unwrap();
    assert_eq!(q.joins.len(), 1);
    assert_eq!(
        q.joins[0],
        JoinCond::new(ColRef::new("t", "id"), ColRef::new("p", "id"))
    );
    let again = parse(&q.to_sql()).unwrap();
    assert_eq!(again, q);
}

/// The classic display hazard: a float literal with no fractional part
/// prints like an integer. The engine's display keeps `Value::Float(2.5)`
/// parseable as a float; this pins the behaviour the generator relies on.
#[test]
fn fractional_float_literals_survive_roundtrip() {
    let q = parse("SELECT t.name FROM title AS t WHERE t.score > 2.5").unwrap();
    let again = parse(&q.to_sql()).unwrap();
    assert_eq!(again, q);
    assert!(q.to_sql().contains("2.5"));
}
