//! Property test: SQL parse → display → re-parse round-trips.
//!
//! Queries are generated directly as ASTs in *canonical form* — the shape
//! the rest of the system builds (joins in `Query::joins`, the predicate a
//! left-fold `AND` spine with no cross-binding `col = col` conjuncts) —
//! for which `parse(q.to_sql()) == q` holds exactly. On top of the strict
//! round-trip, every query must also be a display fixpoint: one
//! parse/display cycle reaches text that re-parses to itself, which is the
//! contract callers rely on when they persist query text.

use asqp_db::expr::{CmpOp, ColRef, Expr};
use asqp_db::query::{AggExpr, AggFunc, JoinCond, OrderKey, Query, SelectItem, TableRef};
use asqp_db::sql::parse;
use asqp_db::value::Value;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const TABLES: &[(&str, &str)] = &[
    ("title", "t"),
    ("person", "p"),
    ("movie_cast", "mc"),
    ("company", "c"),
];
const COLUMNS: &[&str] = &["id", "name", "year", "kind", "score", "note"];
const WORDS: &[&str] = &["drama", "comedy", "alpha", "beta2", "x"];
const PATTERNS: &[&str] = &["a%", "%ing", "_b%", "abc", "%x_"];

fn pick<T: Copy>(rng: &mut StdRng, xs: &[T]) -> T {
    xs[rng.random_range(0..xs.len())]
}

fn col(rng: &mut StdRng, bindings: &[&str]) -> ColRef {
    ColRef::new(pick(rng, bindings), pick(rng, COLUMNS))
}

fn literal(rng: &mut StdRng) -> Value {
    match rng.random_range(0..3u8) {
        0 => Value::Int(rng.random_range(0..10_000i64)),
        // Forced fraction: a float that printed without a dot ("2") would
        // re-parse as an Int and break the round-trip.
        1 => Value::Float(rng.random_range(0..2_000i64) as f64 + 0.5),
        _ => Value::Str(pick(rng, WORDS).to_string()),
    }
}

/// A predicate atom: never a bare `col = col` (the parser would lift a
/// cross-binding one into `joins`, changing the AST shape).
fn atom(rng: &mut StdRng, bindings: &[&str]) -> Expr {
    let c = Expr::Column(col(rng, bindings));
    match rng.random_range(0..5u8) {
        0 => {
            let op = pick(
                rng,
                &[
                    CmpOp::Eq,
                    CmpOp::Ne,
                    CmpOp::Lt,
                    CmpOp::Le,
                    CmpOp::Gt,
                    CmpOp::Ge,
                ],
            );
            Expr::cmp(op, c, Expr::Literal(literal(rng)))
        }
        1 => {
            let lo = rng.random_range(0..500i64);
            let hi = lo + rng.random_range(0..500i64);
            Expr::Between {
                expr: Box::new(c),
                low: Box::new(Expr::lit(lo)),
                high: Box::new(Expr::lit(hi)),
                negated: rng.random_bool(0.3),
            }
        }
        2 => {
            let n = rng.random_range(1..4usize);
            let list = if rng.random_bool(0.5) {
                (0..n)
                    .map(|_| Value::Int(rng.random_range(0..100)))
                    .collect()
            } else {
                (0..n)
                    .map(|_| Value::Str(pick(rng, WORDS).to_string()))
                    .collect()
            };
            Expr::In {
                expr: Box::new(c),
                list,
                negated: rng.random_bool(0.3),
            }
        }
        3 => Expr::Like {
            expr: Box::new(c),
            pattern: pick(rng, PATTERNS).to_string(),
            negated: rng.random_bool(0.3),
        },
        _ => Expr::IsNull {
            expr: Box::new(c),
            negated: rng.random_bool(0.5),
        },
    }
}

/// Expression strictly inside an OR/NOT subtree: protected from conjunct
/// splitting, so any And/Or/Not shape round-trips.
fn inner(rng: &mut StdRng, bindings: &[&str], depth: u8) -> Expr {
    if depth == 0 {
        return atom(rng, bindings);
    }
    match rng.random_range(0..4u8) {
        0 => Expr::and(
            inner(rng, bindings, depth - 1),
            inner(rng, bindings, depth - 1),
        ),
        1 => Expr::or(
            inner(rng, bindings, depth - 1),
            inner(rng, bindings, depth - 1),
        ),
        2 => Expr::Not(Box::new(inner(rng, bindings, depth - 1))),
        _ => atom(rng, bindings),
    }
}

/// One element of the top-level conjunction spine: an atom, or an OR/NOT
/// subtree — never an AND, which would flatten into the spine and get
/// rebuilt left-deep.
fn conjunct(rng: &mut StdRng, bindings: &[&str]) -> Expr {
    match rng.random_range(0..4u8) {
        0 => Expr::or(inner(rng, bindings, 2), inner(rng, bindings, 2)),
        1 => Expr::Not(Box::new(inner(rng, bindings, 1))),
        _ => atom(rng, bindings),
    }
}

fn gen_query(rng: &mut StdRng) -> Query {
    let n_tables = rng.random_range(1..3usize);
    let mut from = Vec::new();
    let mut bindings: Vec<&str> = Vec::new();
    for &(table, alias) in TABLES.iter().take(n_tables) {
        if rng.random_bool(0.7) {
            from.push(TableRef::aliased(table, alias));
            bindings.push(alias);
        } else {
            from.push(TableRef::new(table));
            bindings.push(table);
        }
    }

    let mut joins = Vec::new();
    if n_tables == 2 && rng.random_bool(0.7) {
        joins.push(JoinCond::new(
            ColRef::new(bindings[0], "id"),
            ColRef::new(bindings[1], "id"),
        ));
    }

    let n_conj = rng.random_range(0..4usize);
    let predicate = Expr::conjunction((0..n_conj).map(|_| conjunct(rng, &bindings)).collect());

    let aggregate = rng.random_bool(0.3);
    let (select, distinct, group_by, order_by) = if aggregate {
        let n_group = rng.random_range(0..3usize);
        let group_by: Vec<ColRef> = (0..n_group).map(|_| col(rng, &bindings)).collect();
        let mut select: Vec<SelectItem> =
            group_by.iter().cloned().map(SelectItem::Column).collect();
        for _ in 0..rng.random_range(1..3usize) {
            let func = pick(
                rng,
                &[
                    AggFunc::Count,
                    AggFunc::Sum,
                    AggFunc::Avg,
                    AggFunc::Min,
                    AggFunc::Max,
                ],
            );
            let arg = (func != AggFunc::Count || rng.random_bool(0.5)).then(|| col(rng, &bindings));
            select.push(SelectItem::Aggregate(AggExpr { func, arg }));
        }
        let mut order_by = Vec::new();
        for c in &group_by {
            if rng.random_bool(0.3) {
                order_by.push(OrderKey {
                    column: c.clone(),
                    desc: rng.random_bool(0.5),
                });
            }
        }
        (select, false, group_by, order_by)
    } else {
        let select = if rng.random_bool(0.25) {
            vec![SelectItem::Star]
        } else {
            (0..rng.random_range(1..4usize))
                .map(|_| SelectItem::Column(col(rng, &bindings)))
                .collect()
        };
        let order_by = (0..rng.random_range(0..3usize))
            .map(|_| OrderKey {
                column: col(rng, &bindings),
                desc: rng.random_bool(0.5),
            })
            .collect();
        (select, rng.random_bool(0.2), Vec::new(), order_by)
    };

    Query {
        select,
        distinct,
        from,
        joins,
        predicate,
        group_by,
        order_by,
        limit: rng.random_bool(0.3).then(|| rng.random_range(1..100usize)),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Strict round-trip on canonical ASTs, plus the display fixpoint.
    #[test]
    fn parse_display_roundtrip(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let q = gen_query(&mut rng);
        let sql1 = q.to_sql();

        let q1 = match parse(&sql1) {
            Ok(q1) => q1,
            Err(e) => panic!("generated SQL failed to parse: {e}\n  sql: {sql1}"),
        };
        prop_assert_eq!(&q1, &q, "parse(display(q)) != q\n  sql: {}", sql1);

        let sql2 = q1.to_sql();
        prop_assert_eq!(&sql2, &sql1, "display not a fixpoint");
        let q2 = parse(&sql2).expect("fixpoint SQL must re-parse");
        prop_assert_eq!(&q2, &q1, "second round-trip diverged\n  sql: {}", sql2);
    }

    /// Aggregate-specific slice: the aggregate → SPJ rewrite must itself
    /// produce SQL that round-trips (it feeds the training pipeline).
    #[test]
    fn strip_aggregates_output_roundtrips(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xA66);
        let q = gen_query(&mut rng).strip_aggregates();
        let sql = q.to_sql();
        let q1 = parse(&sql).expect("stripped query must parse");
        prop_assert_eq!(&q1, &q, "stripped query round-trip\n  sql: {}", sql);
    }
}

/// Join lifting is part of the round-trip contract: a cross-binding
/// equality written in WHERE comes back as a `Query::joins` entry, and the
/// next display/parse cycle is stable.
#[test]
fn where_join_conjuncts_lift_and_stay_stable() {
    let q = parse(
        "SELECT t.name FROM title AS t, person AS p \
         WHERE t.id = p.id AND t.year > 1990",
    )
    .unwrap();
    assert_eq!(q.joins.len(), 1);
    assert_eq!(
        q.joins[0],
        JoinCond::new(ColRef::new("t", "id"), ColRef::new("p", "id"))
    );
    let again = parse(&q.to_sql()).unwrap();
    assert_eq!(again, q);
}

/// The classic display hazard: a float literal with no fractional part
/// prints like an integer. The engine's display keeps `Value::Float(2.5)`
/// parseable as a float; this pins the behaviour the generator relies on.
#[test]
fn fractional_float_literals_survive_roundtrip() {
    let q = parse("SELECT t.name FROM title AS t WHERE t.score > 2.5").unwrap();
    let again = parse(&q.to_sql()).unwrap();
    assert_eq!(again, q);
    assert!(q.to_sql().contains("2.5"));
}
