//! Executor integration tests: hash-join pipeline vs the nested-loop oracle,
//! lineage correctness, aggregates, ordering and limits.

use asqp_db::{execute_nested_loop, CmpOp, Database, Expr, Query, Schema, Value, ValueType};

/// A small movie database with referential structure.
fn movie_db() -> Database {
    let mut db = Database::new();
    let movies = db
        .create_table(
            "movies",
            Schema::build(&[
                ("id", ValueType::Int),
                ("title", ValueType::Str),
                ("year", ValueType::Int),
                ("rating", ValueType::Float),
            ]),
        )
        .unwrap();
    let data: Vec<(i64, &str, i64, f64)> = vec![
        (1, "Alien", 1979, 8.5),
        (2, "Aliens", 1986, 8.4),
        (3, "Arrival", 2016, 7.9),
        (4, "Blade Runner", 1982, 8.1),
        (5, "Dune", 2021, 8.0),
        (6, "Her", 2013, 8.0),
    ];
    for (id, title, year, rating) in data {
        movies
            .push_row(&[
                Value::Int(id),
                title.into(),
                Value::Int(year),
                Value::Float(rating),
            ])
            .unwrap();
    }
    let cast = db
        .create_table(
            "cast_info",
            Schema::build(&[
                ("movie_id", ValueType::Int),
                ("person", ValueType::Str),
                ("role", ValueType::Str),
            ]),
        )
        .unwrap();
    let cdata: Vec<(i64, &str, &str)> = vec![
        (1, "Weaver", "actor"),
        (2, "Weaver", "actor"),
        (3, "Adams", "actor"),
        (4, "Ford", "actor"),
        (4, "Young", "actor"),
        (5, "Chalamet", "actor"),
        (99, "Ghost", "actor"), // dangling FK: never joins
    ];
    for (mid, person, role) in cdata {
        cast.push_row(&[Value::Int(mid), person.into(), role.into()])
            .unwrap();
    }
    db
}

#[test]
fn filter_scan_matches_oracle() {
    let db = movie_db();
    let q = asqp_db::sql::parse("SELECT m.title FROM movies m WHERE m.year > 2000").unwrap();
    let fast = db.execute(&q).unwrap();
    let slow = execute_nested_loop(&db, &q).unwrap();
    assert_eq!(fast.rows.len(), 3);
    let mut a = fast.rows.clone();
    let mut b = slow.rows.clone();
    a.sort();
    b.sort();
    assert_eq!(a, b);
}

#[test]
fn hash_join_matches_oracle() {
    let db = movie_db();
    let q = asqp_db::sql::parse(
        "SELECT m.title, c.person FROM movies m, cast_info c \
         WHERE m.id = c.movie_id AND m.rating >= 8.0",
    )
    .unwrap();
    let fast = db.execute(&q).unwrap();
    let slow = execute_nested_loop(&db, &q).unwrap();
    let mut a = fast.rows.clone();
    let mut b = slow.rows.clone();
    a.sort();
    b.sort();
    assert_eq!(a, b);
    // Weaver x2, Ford, Young, Chalamet (Dune 8.0), Her has no cast.
    assert_eq!(fast.rows.len(), 5);
}

#[test]
fn dangling_foreign_key_never_joins() {
    let db = movie_db();
    let q =
        asqp_db::sql::parse("SELECT c.person FROM cast_info c JOIN movies m ON c.movie_id = m.id")
            .unwrap();
    let r = db.execute(&q).unwrap();
    assert!(r
        .rows
        .iter()
        .all(|row| row[0] != Value::Str("Ghost".into())));
}

#[test]
fn lineage_identifies_base_rows() {
    let db = movie_db();
    let q = asqp_db::sql::parse(
        "SELECT m.title, c.person FROM movies m, cast_info c WHERE m.id = c.movie_id",
    )
    .unwrap();
    let out = db.execute_with_lineage(&q).unwrap();
    assert_eq!(out.binding_tables, vec!["movies", "cast_info"]);
    assert_eq!(out.lineage.len(), out.result.rows.len());
    // Check every lineage entry reproduces its result row.
    let movies = db.table("movies").unwrap();
    let cast = db.table("cast_info").unwrap();
    for (row, lin) in out.result.rows.iter().zip(&out.lineage) {
        let title = movies.value(lin[0], 1);
        let person = cast.value(lin[1], 1);
        assert_eq!(row[0], title);
        assert_eq!(row[1], person);
    }
}

#[test]
fn subset_execution_returns_subset_of_full_result() {
    let db = movie_db();
    let mut sel = std::collections::BTreeMap::new();
    sel.insert("movies".to_string(), vec![0usize, 2, 4]);
    sel.insert("cast_info".to_string(), vec![0usize, 2, 5]);
    let sub = db.subset(&sel).unwrap();
    let q = asqp_db::sql::parse(
        "SELECT m.title, c.person FROM movies m, cast_info c WHERE m.id = c.movie_id",
    )
    .unwrap();
    let full: std::collections::BTreeSet<_> = db.execute(&q).unwrap().rows.into_iter().collect();
    let part = sub.execute(&q).unwrap().rows;
    assert!(!part.is_empty());
    for row in &part {
        assert!(
            full.contains(row),
            "subset produced a row not in the full answer"
        );
    }
}

#[test]
fn aggregates_with_group_by() {
    let db = movie_db();
    let q = asqp_db::sql::parse(
        "SELECT c.person, COUNT(*) FROM cast_info c JOIN movies m ON c.movie_id = m.id \
         GROUP BY c.person ORDER BY c.person",
    )
    .unwrap();
    let r = db.execute(&q).unwrap();
    let weaver = r
        .rows
        .iter()
        .find(|row| row[0] == Value::Str("Weaver".into()))
        .unwrap();
    assert_eq!(weaver[1], Value::Int(2));
    // Sorted by person ascending.
    let names: Vec<_> = r.rows.iter().map(|r| r[0].clone()).collect();
    let mut sorted = names.clone();
    sorted.sort();
    assert_eq!(names, sorted);
}

#[test]
fn global_aggregates() {
    let db = movie_db();
    let r = db
        .sql("SELECT COUNT(*), AVG(m.rating), MIN(m.year), MAX(m.year), SUM(m.id) FROM movies m")
        .unwrap();
    assert_eq!(r.rows.len(), 1);
    assert_eq!(r.rows[0][0], Value::Int(6));
    let avg = r.rows[0][1].as_f64().unwrap();
    assert!((avg - 8.15).abs() < 1e-9);
    assert_eq!(r.rows[0][2], Value::Int(1979));
    assert_eq!(r.rows[0][3], Value::Int(2021));
    assert_eq!(r.rows[0][4], Value::Int(21));
}

#[test]
fn global_aggregate_over_empty_input() {
    let db = movie_db();
    let r = db
        .sql("SELECT COUNT(*), SUM(m.id), AVG(m.rating) FROM movies m WHERE m.year > 3000")
        .unwrap();
    assert_eq!(r.rows.len(), 1);
    assert_eq!(r.rows[0][0], Value::Int(0));
    assert_eq!(r.rows[0][1], Value::Null);
    assert_eq!(r.rows[0][2], Value::Null);
}

#[test]
fn order_by_desc_and_limit() {
    let db = movie_db();
    let r = db
        .sql("SELECT m.title FROM movies m ORDER BY m.rating DESC, m.title LIMIT 2")
        .unwrap();
    assert_eq!(
        r.rows,
        vec![
            vec![Value::Str("Alien".into())],
            vec![Value::Str("Aliens".into())]
        ]
    );
}

#[test]
fn distinct_dedups() {
    let db = movie_db();
    let r = db.sql("SELECT DISTINCT c.role FROM cast_info c").unwrap();
    assert_eq!(r.rows.len(), 1);
}

#[test]
fn cartesian_product_when_no_join_condition() {
    let db = movie_db();
    let r = db
        .sql("SELECT m.id, c.person FROM movies m, cast_info c LIMIT 1000")
        .unwrap();
    assert_eq!(r.rows.len(), 6 * 7);
}

#[test]
fn three_way_join() {
    let mut db = movie_db();
    let genres = db
        .create_table(
            "genres",
            Schema::build(&[("movie_id", ValueType::Int), ("genre", ValueType::Str)]),
        )
        .unwrap();
    for (mid, g) in [(1i64, "scifi"), (2, "scifi"), (3, "scifi"), (6, "drama")] {
        genres.push_row(&[Value::Int(mid), g.into()]).unwrap();
    }
    let q = asqp_db::sql::parse(
        "SELECT m.title, c.person, g.genre FROM movies m, cast_info c, genres g \
         WHERE m.id = c.movie_id AND m.id = g.movie_id AND g.genre = 'scifi'",
    )
    .unwrap();
    let fast = db.execute(&q).unwrap();
    let slow = execute_nested_loop(&db, &q).unwrap();
    let mut a = fast.rows.clone();
    let mut b = slow.rows.clone();
    a.sort();
    b.sort();
    assert_eq!(a, b);
    assert_eq!(fast.rows.len(), 3); // Alien, Aliens, Arrival each one cast row
}

#[test]
fn residual_cross_table_predicate() {
    let db = movie_db();
    // Non-equi cross-table condition must be applied as a residual filter.
    let q = Query::builder()
        .select_col("m", "title")
        .select_col("c", "person")
        .from_as("movies", "m")
        .from_as("cast_info", "c")
        .join_on("m", "id", "c", "movie_id")
        .filter(Expr::cmp(
            CmpOp::Lt,
            Expr::col("m", "year"),
            Expr::lit(1985),
        ))
        .build();
    let fast = db.execute(&q).unwrap();
    let slow = execute_nested_loop(&db, &q).unwrap();
    let mut a = fast.rows.clone();
    let mut b = slow.rows.clone();
    a.sort();
    b.sort();
    assert_eq!(a, b);
}

#[test]
fn null_join_keys_do_not_match() {
    let mut db = Database::new();
    let l = db
        .create_table("l", Schema::build(&[("k", ValueType::Int)]))
        .unwrap();
    l.push_row(&[Value::Null]).unwrap();
    l.push_row(&[Value::Int(1)]).unwrap();
    let r = db
        .create_table("r", Schema::build(&[("k", ValueType::Int)]))
        .unwrap();
    r.push_row(&[Value::Null]).unwrap();
    r.push_row(&[Value::Int(1)]).unwrap();
    let res = db.sql("SELECT * FROM l, r WHERE l.k = r.k").unwrap();
    assert_eq!(res.rows.len(), 1, "NULL = NULL must not join");
}

#[test]
fn ambiguous_bare_column_errors() {
    let db = movie_db();
    // `movie_id` exists only in cast_info → fine unqualified.
    assert!(db
        .sql("SELECT * FROM movies, cast_info WHERE movie_id = 1")
        .is_ok());
    // `id` is unique too; but a column present in both tables must error.
    let mut db2 = Database::new();
    db2.create_table("a", Schema::build(&[("x", ValueType::Int)]))
        .unwrap();
    db2.create_table("b", Schema::build(&[("x", ValueType::Int)]))
        .unwrap();
    assert!(db2.sql("SELECT * FROM a, b WHERE x = 1").is_err());
}

#[test]
fn select_star_output_columns_qualified() {
    let db = movie_db();
    let r = db.sql("SELECT * FROM movies m LIMIT 1").unwrap();
    assert_eq!(r.columns, vec!["m.id", "m.title", "m.year", "m.rating"]);
}

#[test]
fn aggregate_after_strip_runs_as_spj() {
    let db = movie_db();
    let agg = asqp_db::sql::parse("SELECT m.year, COUNT(*) FROM movies m GROUP BY m.year").unwrap();
    let spj = agg.strip_aggregates();
    let r = db.execute(&spj).unwrap();
    assert_eq!(r.rows.len(), 6); // one per movie: projected year only
    assert_eq!(r.columns, vec!["m.year"]);
}

#[test]
fn like_and_in_execution() {
    let db = movie_db();
    let r = db
        .sql("SELECT m.title FROM movies m WHERE m.title LIKE 'Ali%'")
        .unwrap();
    assert_eq!(r.rows.len(), 2);
    let r = db
        .sql("SELECT m.title FROM movies m WHERE m.year IN (1979, 2021)")
        .unwrap();
    assert_eq!(r.rows.len(), 2);
}

#[test]
fn sum_int_stays_int_avg_is_float() {
    let db = movie_db();
    let r = db.sql("SELECT SUM(m.year) FROM movies m").unwrap();
    assert!(matches!(r.rows[0][0], Value::Int(_)));
    let r = db.sql("SELECT AVG(m.year) FROM movies m").unwrap();
    assert!(matches!(r.rows[0][0], Value::Float(_)));
}

mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// Build a small random two-table database and a random SPJ query; the
    /// hash-join pipeline and the nested-loop oracle must agree.
    fn arb_db(rows_a: Vec<(i64, i64)>, rows_b: Vec<(i64, i64)>) -> Database {
        let mut db = Database::new();
        let a = db
            .create_table(
                "a",
                Schema::build(&[("id", ValueType::Int), ("v", ValueType::Int)]),
            )
            .unwrap();
        for (id, v) in rows_a {
            a.push_row(&[Value::Int(id), Value::Int(v)]).unwrap();
        }
        let b = db
            .create_table(
                "b",
                Schema::build(&[("fk", ValueType::Int), ("w", ValueType::Int)]),
            )
            .unwrap();
        for (fk, w) in rows_b {
            b.push_row(&[Value::Int(fk), Value::Int(w)]).unwrap();
        }
        db
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn join_agrees_with_oracle(
            rows_a in prop::collection::vec((0i64..8, 0i64..20), 0..12),
            rows_b in prop::collection::vec((0i64..8, 0i64..20), 0..12),
            threshold in 0i64..20,
        ) {
            let db = arb_db(rows_a, rows_b);
            let q = Query::builder()
                .select_col("a", "id").select_col("b", "w")
                .from("a").from("b")
                .join_on("a", "id", "b", "fk")
                .filter(Expr::cmp(CmpOp::Ge, Expr::col("a", "v"), Expr::lit(threshold)))
                .build();
            let mut fast = db.execute(&q).unwrap().rows;
            let mut slow = execute_nested_loop(&db, &q).unwrap().rows;
            fast.sort();
            slow.sort();
            prop_assert_eq!(fast, slow);
        }

        #[test]
        fn distinct_never_repeats(
            rows_a in prop::collection::vec((0i64..4, 0i64..4), 0..20),
        ) {
            let db = arb_db(rows_a, vec![]);
            let r = db.sql("SELECT DISTINCT a.id FROM a").unwrap();
            let mut seen = std::collections::HashSet::new();
            for row in &r.rows {
                prop_assert!(seen.insert(row.clone()));
            }
        }

        #[test]
        fn limit_respected(
            rows_a in prop::collection::vec((0i64..100, 0i64..100), 0..30),
            limit in 0usize..10,
        ) {
            let db = arb_db(rows_a.clone(), vec![]);
            let q = Query::builder().select_star().from("a").limit(limit).build();
            let r = db.execute(&q).unwrap();
            prop_assert_eq!(r.rows.len(), limit.min(rows_a.len()));
        }

        #[test]
        fn count_star_equals_row_count(
            rows_a in prop::collection::vec((0i64..50, 0i64..50), 0..30),
        ) {
            let db = arb_db(rows_a.clone(), vec![]);
            let r = db.sql("SELECT COUNT(*) FROM a").unwrap();
            prop_assert_eq!(r.rows[0][0].clone(), Value::Int(rows_a.len() as i64));
        }

        #[test]
        fn parser_roundtrip_on_generated_queries(
            threshold in -100i64..100,
            limit in proptest::option::of(0usize..50),
            desc in any::<bool>(),
        ) {
            let mut b = Query::builder()
                .select_col("a", "id")
                .from_as("a", "x")
                .filter(Expr::cmp(CmpOp::Le, Expr::col("x", "v"), Expr::lit(threshold)))
                .order_by("x", "id", desc);
            if let Some(l) = limit { b = b.limit(l); }
            let q = b.build();
            let reparsed = asqp_db::sql::parse(&q.to_sql()).unwrap();
            prop_assert_eq!(q, reparsed);
        }
    }
}
