//! Incremental-maintenance equivalence oracle (extends the PR-1/PR-6
//! oracle pattern): after a random interleaving of batched appends and
//! in-place updates driven through [`Database::append_rows`] /
//! [`Database::update_rows`], every piece of incrementally maintained
//! derived state — zone maps, statistics accumulators, `TableStats` — must
//! be *identical* to what a from-scratch rebuild over the final data
//! produces, and every query must return the same rows, order, and lineage
//! as a fresh `Database` loaded with the final rows.

mod common;

use asqp_db::zonemap::{TableZones, MORSEL_ROWS};
use asqp_db::{Database, Row, TableStats, Value};
use common::{fixture_db, gen_query_upto, pick, WORDS};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// One generated row in the fixture vocabulary, so appended rows both join
/// with existing ones and sometimes match generated predicates.
fn gen_row(rng: &mut StdRng) -> Row {
    let mut row = vec![
        Value::Int(rng.random_range(0..90i64)),
        Value::Str(pick(rng, WORDS).to_string()),
        Value::Int(rng.random_range(0..500i64)),
        Value::Str(pick(rng, WORDS).to_string()),
        Value::Float(rng.random_range(0..100i64) as f64 / 2.0 + 0.5),
        Value::Str(pick(rng, WORDS).to_string()),
    ];
    for cell in row.iter_mut().skip(1) {
        if rng.random_bool(0.08) {
            *cell = Value::Null;
        }
    }
    row
}

/// A fresh database holding exactly `rows` per table — the from-scratch
/// oracle every incremental structure is compared against.
fn rebuild(live: &Database, rows: &BTreeMap<String, Vec<Row>>) -> Database {
    let mut db = Database::new();
    for table in live.tables() {
        let fresh = db
            .create_table(table.name(), table.schema().clone())
            .unwrap();
        for row in &rows[table.name()] {
            fresh.push_row(row).unwrap();
        }
    }
    db
}

/// Assert every maintained structure equals its rebuilt-from-scratch twin.
fn assert_equivalent(live: &Database, oracle: &Database, queries: &[asqp_db::Query], seed: u64) {
    for table in live.tables() {
        let fresh = oracle.table(table.name()).unwrap();
        assert_eq!(table.row_count(), fresh.row_count(), "seed {seed}");

        let maintained_zones = table.zone_maps();
        let rebuilt_zones = TableZones::build(fresh);
        assert_eq!(
            *maintained_zones,
            rebuilt_zones,
            "zone maps diverged for {} (seed {seed})",
            table.name()
        );

        let maintained_stats = live.table_stats(table.name()).unwrap();
        let rebuilt_stats = TableStats::compute(fresh);
        assert_eq!(
            *maintained_stats,
            rebuilt_stats,
            "table stats diverged for {} (seed {seed})",
            table.name()
        );
        assert_eq!(
            format!("{maintained_stats:?}"),
            format!("{rebuilt_stats:?}"),
            "stats debug render diverged for {} (seed {seed})",
            table.name()
        );
    }

    for q in queries {
        let a = live.execute_with_lineage(q).unwrap();
        let b = oracle.execute_with_lineage(q).unwrap();
        assert_eq!(
            a.result.rows,
            b.result.rows,
            "rows/order diverged (seed {seed}): {}",
            q.to_sql()
        );
        assert_eq!(
            a.lineage,
            b.lineage,
            "lineage diverged (seed {seed}): {}",
            q.to_sql()
        );
        assert_eq!(
            live.cached_row_count(q).unwrap(),
            oracle.cached_row_count(q).unwrap(),
            "cardinality diverged (seed {seed}): {}",
            q.to_sql()
        );
    }
}

fn run_interleaving(seed: u64, ops: usize, checkpoints: usize) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut live = fixture_db();
    let mut rows: BTreeMap<String, Vec<Row>> = live
        .tables()
        .map(|t| {
            (
                t.name().to_string(),
                t.row_ids().map(|r| t.row(r)).collect(),
            )
        })
        .collect();
    let names: Vec<String> = live.table_names().map(String::from).collect();
    let queries: Vec<asqp_db::Query> = (0..12).map(|_| gen_query_upto(&mut rng, 2)).collect();

    // Warm every maintained structure so the incremental paths (zone-map
    // extension, stats absorption, fingerprinted counts) actually run —
    // cold caches would just rebuild lazily and prove nothing.
    for name in &names {
        live.table(name).unwrap().zone_maps();
        live.table_stats(name).unwrap();
    }
    for q in &queries {
        live.cached_row_count(q).unwrap();
    }

    for op in 0..ops {
        let name = names[rng.random_range(0..names.len())].clone();
        if rng.random_bool(0.6) {
            // Append a batch; occasionally large enough to cross a morsel
            // boundary so whole-chunk reuse and partial-chunk rescans both
            // get exercised.
            let batch = if rng.random_bool(0.1) {
                MORSEL_ROWS + rng.random_range(0..64usize)
            } else {
                rng.random_range(1..40usize)
            };
            let new_rows: Vec<Row> = (0..batch).map(|_| gen_row(&mut rng)).collect();
            live.append_rows(&name, &new_rows).unwrap();
            rows.get_mut(&name).unwrap().extend(new_rows);
        } else {
            let n = live.table(&name).unwrap().row_count();
            if n == 0 {
                continue;
            }
            let updates: Vec<(usize, Row)> = (0..rng.random_range(1..10usize))
                .map(|_| (rng.random_range(0..n), gen_row(&mut rng)))
                .collect();
            live.update_rows(&name, &updates).unwrap();
            let mirror = rows.get_mut(&name).unwrap();
            for (rid, row) in &updates {
                mirror[*rid] = row.clone();
            }
        }
        // Occasionally read stats/counts mid-stream so absorption runs on a
        // warm accumulator rather than being deferred to the final check.
        if rng.random_bool(0.3) {
            live.table_stats(&name).unwrap();
        }
        if rng.random_bool(0.2) {
            let q = &queries[rng.random_range(0..queries.len())];
            live.cached_row_count(q).unwrap();
        }
        if checkpoints > 0 && op % (ops / checkpoints).max(1) == 0 {
            let oracle = rebuild(&live, &rows);
            assert_equivalent(&live, &oracle, &queries, seed);
        }
    }

    let oracle = rebuild(&live, &rows);
    assert_equivalent(&live, &oracle, &queries, seed);
}

#[test]
fn random_interleavings_match_from_scratch_rebuilds() {
    for seed in [7, 42, 0xA5_0E11, 20240807] {
        run_interleaving(seed, 40, 2);
    }
}

#[test]
fn morsel_crossing_appends_match_rebuilds() {
    // Heavier batches: most appends cross chunk boundaries.
    let mut rng = StdRng::seed_from_u64(99);
    let mut live = fixture_db();
    let queries: Vec<asqp_db::Query> = (0..8).map(|_| gen_query_upto(&mut rng, 2)).collect();
    let mut rows: BTreeMap<String, Vec<Row>> = live
        .tables()
        .map(|t| {
            (
                t.name().to_string(),
                t.row_ids().map(|r| t.row(r)).collect(),
            )
        })
        .collect();
    live.table("title").unwrap().zone_maps();
    live.table_stats("title").unwrap();
    for _ in 0..4 {
        let batch: Vec<Row> = (0..MORSEL_ROWS + 17).map(|_| gen_row(&mut rng)).collect();
        live.append_rows("title", &batch).unwrap();
        rows.get_mut("title").unwrap().extend(batch);
    }
    let oracle = rebuild(&live, &rows);
    assert_equivalent(&live, &oracle, &queries, 99);
}
