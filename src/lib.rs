//! # asqp — ASQP-RL: Learning Approximation Sets for Exploratory Queries
//!
//! Facade crate re-exporting the full ASQP-RL reproduction:
//!
//! * [`db`] — in-memory relational engine (SQL subset, hash joins, lineage)
//! * [`data`] — seeded IMDB- / MAS- / FLIGHTS-shaped datasets + workloads
//! * [`embed`] — feature-hashing query/tuple embeddings + clustering
//! * [`nn`] — from-scratch MLPs, Adam, VAE
//! * [`rl`] — PPO / A2C / REINFORCE with action masking
//! * [`core`] — the ASQP-RL system itself (metric, preprocessing, GSL/DRP
//!   environments, training, inference, estimator, drift, aggregates)
//! * [`baselines`] — every comparator from the paper's evaluation
//! * [`serve`] — concurrent session server (admission control, deadlines
//!   with degrade-to-subset, seeded fault injection, chaos simulator)
//!
//! ```
//! use asqp::prelude::*;
//!
//! let db = asqp::data::imdb::generate(Scale::Tiny, 1);
//! let workload = asqp::data::imdb::workload(12, 1);
//! let mut cfg = AsqpConfig::full(60, 20);
//! cfg.iterations = 3; // doc-test budget
//! cfg.trainer.num_workers = 1;
//! let model = train(&db, &workload, &cfg).unwrap();
//! let subset = model.materialize(&db, None).unwrap();
//! assert!(subset.total_rows() > 0);
//! ```

pub use asqp_baselines as baselines;
pub use asqp_core as core;
pub use asqp_data as data;
pub use asqp_db as db;
pub use asqp_embed as embed;
pub use asqp_nn as nn;
pub use asqp_rl as rl;
pub use asqp_serve as serve;

/// The most common imports in one place.
pub mod prelude {
    pub use asqp_baselines::{Baseline, BaselineOutput};
    pub use asqp_core::{
        fine_tune, score, train, AnswerSource, AsqpConfig, MetricParams, Session, SessionConfig,
        TrainedModel,
    };
    pub use asqp_data::Scale;
    pub use asqp_db::{Database, Query, Value, Workload};
}
